//! Durability end to end: what group commit costs on the serving path, and
//! what crash recovery guarantees when the process dies mid-stream.
//!
//! Two parts:
//!
//! * **Group-commit cost probe** — the same seeded write-heavy scenario
//!   served three times through a `PipelineTarget`: WAL detached, WAL with
//!   `SyncPolicy::EveryGroup` (a barrier per sub-batch), and WAL with
//!   `SyncPolicy::EveryN(8)`. Reports throughput for each, the WAL
//!   append/fsync counts, and then a timed full recovery whose rebuilt
//!   state is compared entry-for-entry against the live store.
//! * **Crash matrix** — for ALEX+ and B+treeOLC, a seeded write stream is
//!   killed at scripted failpoints (clean kill, crash during the sync
//!   barrier, a torn short-write, an append error, a crash between snapshot
//!   rename and WAL truncate). Each round tracks the accepted-op model (the
//!   non-error responses), recovers from disk, and asserts the rebuilt
//!   index equals the model exactly — no lost ack, no ghost op — reporting
//!   recovery time and replayed ops per cell.
//!
//! Results land in `figs_recovery_report.json` (round-tripped through the
//! repo's JSON parser; CI uploads it as an artifact). `--quick` shrinks the
//! spans for a CI smoke run.

use gre_bench::registry::IndexBuilder;
use gre_bench::{perfjson, RunOpts};
use gre_core::{ConcurrentIndex, Payload, RangeSpec, Response};
use gre_datasets::Dataset;
use gre_durability::util::TempDir;
use gre_durability::{
    DurableLog, FailAction, FailpointRegistry, Recovery, SyncPolicy, Trigger, WalStats,
};
use gre_shard::{OpBatch, Partitioner, PipelineTarget, RetryPolicy, ShardPipeline};
use gre_workloads::driver::Driver;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const REPORT_OUT: &str = "figs_recovery_report.json";
const SHARDS: usize = 4;

fn main() {
    let opts = RunOpts::from_env();
    println!("# Durability: group-commit cost and fault-injected crash recovery");

    let cost = cost_probe(&opts);
    let matrix = crash_matrix(&opts);

    let json = report_json(&opts, &cost, &matrix);
    perfjson::Json::parse(&json).expect("recovery report must round-trip the JSON parser");
    std::fs::write(REPORT_OUT, &json).expect("write recovery report");
    println!("\nreport -> {REPORT_OUT} ({} bytes)", json.len());
}

// ---------------------------------------------------------------------------
// Part 1: group-commit throughput cost + timed whole-scenario recovery.
// ---------------------------------------------------------------------------

struct CostProbe {
    backend: String,
    base_mops: f64,
    every_group_mops: f64,
    every_n_mops: f64,
    wal: WalStats,
    recovery_ms: f64,
    replayed_ops: u64,
    recovered_entries: usize,
}

fn write_heavy_scenario(opts: &RunOpts, keys: &[u64], ops: u64) -> Scenario {
    Scenario::new("durability-cost", opts.seed, keys).phase(Phase::new(
        "write-heavy",
        Mix::points(2, 5, 2, 1),
        KeyDist::Uniform,
        Span::Ops(ops),
        Pacing::ClosedLoop {
            threads: opts.threads.clamp(1, 8),
        },
    ))
}

fn cost_probe(opts: &RunOpts) -> CostProbe {
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    let spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(SHARDS);
    let phase_ops = if opts.quick { 40_000 } else { 200_000 } as u64;
    let threads = opts.threads.clamp(1, 8);
    let scenario = write_heavy_scenario(opts, &keys, phase_ops);

    println!(
        "\n## Group-commit cost ({}, {} threads, {} write-heavy ops)",
        spec.display_name(),
        threads,
        phase_ops
    );

    let run_plain = |label: &str| {
        let mut target = PipelineTarget::new(spec.build_sharded(), threads, 256);
        let result = Driver::new().run(&scenario, &mut target);
        let p = &result.phases[0];
        assert_eq!(p.tally.errors, 0, "{label}: no refusals without faults");
        println!("  {label:<22} {:.3} Mop/s", p.throughput_mops());
        p.throughput_mops()
    };
    let base_mops = run_plain("wal detached");

    let run_durable = |label: &str, policy: SyncPolicy| {
        let tmp = TempDir::new("figs-recovery-cost");
        let mut target = PipelineTarget::new(spec.build_sharded(), threads, 256)
            .durable(tmp.path(), policy)
            .with_retry(RetryPolicy::default());
        let result = Driver::new().run(&scenario, &mut target);
        let p = &result.phases[0];
        assert_eq!(p.tally.errors, 0, "{label}: no refusals without faults");
        let log = Arc::clone(target.durability().expect("durable target is loaded"));
        let stats = log.stats();
        println!(
            "  {label:<22} {:.3} Mop/s  ({} appends, {} fsyncs)",
            p.throughput_mops(),
            stats.appends,
            stats.fsyncs
        );
        (p.throughput_mops(), stats, tmp, target)
    };
    let (every_group_mops, wal, tmp, target) =
        run_durable("wal sync=every-group", SyncPolicy::EveryGroup);
    let (every_n_mops, _, _tmp_n, _target_n) =
        run_durable("wal sync=every-8", SyncPolicy::EveryN(8));

    // Timed recovery of the every-group run, checked entry-for-entry: the
    // state rebuilt purely from disk must equal the live store.
    let started = Instant::now();
    let rec = Recovery::recover(tmp.path()).expect("scan WAL dir");
    let mut rebuilt = spec.build();
    let replayed_ops = rec.replay_into(&mut *rebuilt);
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;

    let live = target.index();
    assert!(rec.is_clean(), "an uninjected run recovers clean");
    assert_eq!(rebuilt.len(), live.len(), "recovered size");
    let scan_all = |index: &dyn ConcurrentIndex<u64>| {
        let mut out: Vec<(u64, Payload)> = Vec::with_capacity(index.len());
        index.range(RangeSpec::new(0, index.len() + 1), &mut out);
        out
    };
    assert_eq!(
        scan_all(&*rebuilt),
        scan_all(live),
        "recovered entries must equal the live store exactly"
    );
    println!(
        "  recovery: {} groups, {replayed_ops} ops replayed over {} snapshot keys \
         in {recovery_ms:.1} ms — rebuilt store matches live exactly",
        rec.shards.iter().map(|s| s.groups.len()).sum::<usize>(),
        rec.shards
            .iter()
            .filter_map(|s| s.snapshot.as_ref().map(|sn| sn.entries.len()))
            .sum::<usize>(),
    );

    CostProbe {
        backend: spec.display_name(),
        base_mops,
        every_group_mops,
        every_n_mops,
        wal,
        recovery_ms,
        replayed_ops,
        recovered_entries: rebuilt.len(),
    }
}

// ---------------------------------------------------------------------------
// Part 2: the crash matrix.
// ---------------------------------------------------------------------------

struct CrashCell {
    backend: &'static str,
    scenario: &'static str,
    accepted: usize,
    refused: usize,
    replayed_ops: u64,
    recovery_ms: f64,
    equivalent: bool,
}

/// Apply `op` to the model iff it was accepted; panics if an accepted
/// response diverges from the model (single sequential submitter, so
/// accepted responses are deterministic).
fn apply_accepted(
    model: &mut BTreeMap<u64, Payload>,
    op: Op,
    resp: &Response<u64>,
    ctx: &str,
) -> bool {
    if resp.is_error() {
        return false;
    }
    let expected = match op {
        Op::Get(k) => Response::Get(model.get(&k).copied()),
        Op::Insert(k, v) => Response::Insert(model.insert(k, v).is_none()),
        Op::Update(k, v) => Response::Update(match model.get_mut(&k) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }),
        Op::Remove(k) => Response::Remove(model.remove(&k)),
        Op::Range(_) => unreachable!("crash stream has no ranges"),
    };
    assert_eq!(*resp, expected, "{ctx}: accepted response diverged");
    true
}

fn random_write_or_get(rng: &mut StdRng, domain: u64) -> Op {
    let key = rng.gen_range(0..domain);
    match rng.gen_range(0..8u32) {
        0..=1 => Op::Get(key),
        2..=4 => Op::Insert(key, rng.gen()),
        5..=6 => Op::Update(key, rng.gen()),
        _ => Op::Remove(key),
    }
}

/// A scripted failpoint: named point, when it fires, what it does.
type Script = (&'static str, Trigger, FailAction);

fn crash_matrix(opts: &RunOpts) -> Vec<CrashCell> {
    // (scenario label, scripted failpoint) — None = clean kill mid-stream.
    let scripts: [(&'static str, Option<Script>); 5] = [
        ("clean-kill", None),
        (
            "crash-on-sync",
            Some(("wal/0/sync", Trigger::OnHit(5), FailAction::Crash)),
        ),
        (
            "torn-short-write",
            Some((
                "wal/1/append",
                Trigger::OnHit(4),
                FailAction::ShortWrite { keep: 13 },
            )),
        ),
        (
            "error-on-append",
            Some(("wal/2/append", Trigger::OnHit(3), FailAction::Error)),
        ),
        (
            // OnHit(2): hit 1 is the bulk-load checkpoint; the crash lands on
            // the mid-stream checkpoint's truncate, after its snapshot has
            // already been renamed in.
            "checkpoint-race",
            Some(("wal/0/truncate", Trigger::OnHit(2), FailAction::Crash)),
        ),
    ];

    println!("\n## Crash matrix (kill at injected fault, recover, compare to accepted ops)");
    let mut cells = Vec::new();
    for backend in ["ALEX+", "B+treeOLC"] {
        for (label, script) in scripts {
            let cell = crash_cell(opts, backend, label, script);
            println!(
                "  {:<10} {:<17} accepted={:<5} refused={:<4} replayed={:<5} \
                 recovery={:.2} ms  {}",
                cell.backend,
                cell.scenario,
                cell.accepted,
                cell.refused,
                cell.replayed_ops,
                cell.recovery_ms,
                if cell.equivalent {
                    "EQUIVALENT"
                } else {
                    "DIVERGED"
                }
            );
            assert!(cell.equivalent, "{backend}/{label}: recovery must be exact");
            cells.push(cell);
        }
    }
    cells
}

fn crash_cell(
    opts: &RunOpts,
    backend: &'static str,
    label: &'static str,
    script: Option<Script>,
) -> CrashCell {
    let ctx = format!("{backend}/{label}");
    let spec = IndexBuilder::backend(backend)
        .expect("registered backend")
        .shards(SHARDS);
    let tmp = TempDir::new("figs-recovery-matrix");
    let rounds = if opts.quick { 30 } else { 80 };
    let batch = if opts.quick { 64 } else { 128 };
    let domain = 30_000u64;

    let mut idx = spec.build_sharded();
    let bulk: Vec<(u64, Payload)> = (0..3_000u64).map(|i| (i * 7, i)).collect();
    idx.bulk_load(&bulk);
    let mut model: BTreeMap<u64, Payload> = bulk.iter().copied().collect();

    let registry = FailpointRegistry::new();
    if let Some((point, trigger, action)) = script {
        registry.script(point, trigger, action);
    }
    let log = DurableLog::create_injected(
        tmp.path(),
        SHARDS,
        SyncPolicy::EveryGroup,
        Arc::clone(&registry),
    )
    .expect("create injected log");
    // The bulk load bypasses the pipeline: checkpoint it so recovery starts
    // from the loaded state.
    let partitioner = Partitioner::range(SHARDS);
    let shard_entries = |model: &BTreeMap<u64, Payload>, shard: usize| -> Vec<(u64, Payload)> {
        model
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|&(k, _)| partitioner.shard_of(k) == shard)
            .collect()
    };
    for shard in 0..SHARDS {
        log.checkpoint(shard, &shard_entries(&model, shard))
            .expect("checkpoint bulk load");
    }

    let pipeline: ShardPipeline<Box<dyn ConcurrentIndex<u64>>> =
        ShardPipeline::with_durability(Arc::new(idx), 2, 64, log);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ label.len() as u64);
    let (mut accepted, mut refused) = (0usize, 0usize);
    for round in 0..rounds {
        // The checkpoint-race cell runs a mid-stream checkpoint of shard 0
        // while it is quiesced (sequential submit-and-wait): the scripted
        // truncate crash fires *after* the snapshot has been renamed in, so
        // recovery must reconcile a fresh snapshot with an untruncated WAL.
        if label == "checkpoint-race" && round == rounds / 2 {
            let log = Arc::clone(pipeline.durability().expect("durable"));
            let _ = log.checkpoint(0, &shard_entries(&model, 0));
        }
        let ops: Vec<Op> = (0..batch)
            .map(|_| random_write_or_get(&mut rng, domain))
            .collect();
        let responses = pipeline.submit(OpBatch::new(ops.clone())).wait();
        for (&op, resp) in ops.iter().zip(&responses) {
            if apply_accepted(&mut model, op, resp, &ctx) {
                accepted += 1;
            } else {
                refused += 1;
            }
        }
    }
    if let Some((point, _, _)) = script {
        assert!(registry.fired(point), "{ctx}: scripted fault never fired");
    }
    let live = Arc::clone(pipeline.index());
    drop(pipeline); // the kill: workers join, surviving shards sync
    assert_eq!(
        live.len(),
        model.len(),
        "{ctx}: fail-stop keeps memory exact"
    );

    let started = Instant::now();
    let rec = Recovery::recover(tmp.path()).expect("scan WAL dir");
    let mut rebuilt = spec.build();
    let replayed_ops = rec.replay_into(&mut *rebuilt);
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;

    let equivalent =
        rebuilt.len() == model.len() && model.iter().all(|(&k, &v)| rebuilt.get(k) == Some(v));
    CrashCell {
        backend,
        scenario: label,
        accepted,
        refused,
        replayed_ops,
        recovery_ms,
        equivalent,
    }
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

fn report_json(opts: &RunOpts, cost: &CostProbe, matrix: &[CrashCell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"quick\": {},\n", opts.quick));
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!(
        "  \"cost\": {{\n    \"backend\": \"{}\",\n    \"base_mops\": {:.4},\n    \
         \"every_group_mops\": {:.4},\n    \"every_n_mops\": {:.4},\n    \
         \"wal_appends\": {},\n    \"wal_fsyncs\": {},\n    \"recovery_ms\": {:.3},\n    \
         \"replayed_ops\": {},\n    \"recovered_entries\": {}\n  }},\n",
        cost.backend,
        cost.base_mops,
        cost.every_group_mops,
        cost.every_n_mops,
        cost.wal.appends,
        cost.wal.fsyncs,
        cost.recovery_ms,
        cost.replayed_ops,
        cost.recovered_entries
    ));
    out.push_str("  \"crash_matrix\": [\n");
    for (i, cell) in matrix.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"scenario\": \"{}\", \"accepted\": {}, \
             \"refused\": {}, \"replayed_ops\": {}, \"recovery_ms\": {:.3}, \
             \"equivalent\": {}}}{}\n",
            cell.backend,
            cell.scenario,
            cell.accepted,
            cell.refused,
            cell.replayed_ops,
            cell.recovery_ms,
            cell.equivalent,
            if i + 1 < matrix.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
