//! # gre-bench
//!
//! The GRE benchmark harness: index registries, the heatmap machinery of
//! Figures 2/4/7/14/16, and shared helpers used by the per-figure binaries
//! in `src/bin/` (one binary per table/figure of the paper; see DESIGN.md §5
//! and EXPERIMENTS.md for the mapping).

pub mod heatmap;
pub mod perfjson;
pub mod registry;
pub mod report;
pub mod runopts;
pub mod trajectory;

pub use heatmap::{Heatmap, HeatmapCell};
pub use perfjson::{BenchReport, BenchResult, SCHEMA_VERSION};
pub use registry::{
    backend, concurrent_backend, concurrent_indexes, sharded_concurrent_indexes, sharded_index,
    single_thread_indexes, IndexKind,
};
pub use runopts::RunOpts;
