//! Figures C/D/E/F (appendix): validating the hardness metric — throughput of
//! ALEX and LIPP on the balanced workload plotted against local hardness
//! H(eps=32), global hardness H(eps=4096), and the single-regression MSE.
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_learned::{Alex, Lipp};
use gre_pla::HardnessConfig;
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figures C/D/E/F: hardness metrics vs balanced-workload throughput");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "dataset", "H(eps=32)", "H(eps=4096)", "1-line MSE", "ALEX Mop/s", "LIPP Mop/s"
    );
    for ds in Dataset::HEATMAP_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let h = ds.hardness(opts.keys, opts.seed, HardnessConfig::default());
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::Balanced);
        let mut alex = Alex::<u64>::new();
        let mut lipp = Lipp::<u64>::new();
        let ra = run_single(&mut alex, &workload);
        let rl = run_single(&mut lipp, &workload);
        println!(
            "{:<10} {:>12} {:>12} {:>14.3e} {:>12.3} {:>12.3}",
            ds.name(),
            h.local,
            h.global,
            h.single_line_mse,
            ra.throughput_mops(),
            rl.throughput_mops()
        );
    }
}
