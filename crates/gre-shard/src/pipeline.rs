//! The batched request pipeline: [`OpBatch`] → per-shard sub-batches executed
//! on a fixed worker pool, with **typed per-operation results**.
//!
//! Callers hand the pipeline whole batches of operations instead of issuing
//! them one by one; the pipeline routes each batch into per-shard sub-batches
//! (amortizing partitioner lookups and thread hand-off over many ops) and
//! executes them on `workers` long-lived threads. Shard `s` is pinned to
//! worker `s % workers`, and each worker drains its queue in arrival order,
//! which yields the pipeline's ordering guarantee: **operations on the same
//! shard execute in submission order** (per-shard FIFO). Operations on
//! different shards from the same batch may run concurrently — exactly the
//! freedom a partitioned store is allowed to exploit.
//!
//! The client surface is built from three pieces:
//!
//! * [`ShardPipeline::try_submit`] enqueues a batch without blocking. Every
//!   shard queue is **bounded**; a full queue rejects the whole batch with
//!   [`Backpressure`] (returning it to the caller) rather than queueing
//!   unboundedly. [`ShardPipeline::submit`] is the blocking form that waits
//!   for capacity.
//! * [`SubmitHandle`] is the per-batch completion handle. Workers fill one
//!   [`Response`] slot per operation, **in submission order** (slot `i`
//!   answers `batch.ops[i]`); the handle exposes the non-blocking
//!   [`try_take`](SubmitHandle::try_take) / [`is_ready`](SubmitHandle::is_ready)
//!   and the bounded [`wait_timeout`](SubmitHandle::wait_timeout) — no async
//!   runtime, just a mutex/condvar pair per batch.
//! * [`Session`] pipelines many in-flight batches for one client and hands
//!   results back in FIFO submission order, so a client can keep the worker
//!   pool busy without ever blocking on an individual batch.
//!
//! Point operations go straight to the owning shard's backend (the routing
//! already picked it, so the composite's dispatch is skipped); range scans
//! run through the full [`ShardedIndex`] so cross-shard stitching applies.
//! Operations a backend cannot serve (deletes or scans with the capability
//! flag off) answer [`Response::Error`] instead of silently no-opping.
//!
//! ## Durability
//!
//! A pipeline built with [`ShardPipeline::with_durability`] carries an
//! optional per-shard write-ahead log ([`DurableLog`]): each sub-batch's
//! writes are logged and synced as **one group-commit record** before any of
//! them executes (log-then-execute), so durability rides the batching the
//! pipeline already does and per-shard FIFO order makes the log a faithful
//! replay script. The semantics are **fail-stop**: if the log cannot accept
//! a group, the sub-batch does not execute and every op in it answers
//! [`Response::Error`]\([`IndexError::Shutdown`]) — memory never runs ahead
//! of the durable state. [`ShardPipeline::shutdown`] flips the same terminal
//! answer for all subsequent submissions, letting clients distinguish
//! "drained and executed" from "refused". Detached (the default), the WAL
//! path costs nothing.

use crate::retry::RetryPolicy;
use crate::sharded::ShardedIndex;
use gre_core::{ConcurrentIndex, IndexError, IndexMeta, Response};
use gre_durability::DurableLog;
use gre_telemetry::{
    CounterId, CounterStripe, GaugeId, GlobalHistId, ShardHistId, SpanRecord, Telemetry,
};
use gre_workloads::{split_indexed_ops_by_shard, Op};
use rand::RngCore;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on each shard's queue, in sub-batches.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// A batch of operations submitted to the pipeline as one unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBatch {
    pub ops: Vec<Op>,
}

impl OpBatch {
    pub fn new(ops: Vec<Op>) -> Self {
        OpBatch { ops }
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Aggregated outcome of one executed batch: the counter view over a slice
/// of per-op [`Response`]s, kept for throughput reporting and as the
/// migration target of the old merged-counters API.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Operations executed.
    pub ops: usize,
    /// Lookups that found their key.
    pub hits: usize,
    /// Keys returned by range scans.
    pub scanned_keys: usize,
    /// Inserts that created a new key (as opposed to updating in place).
    pub new_keys: usize,
    /// Updates that found their key.
    pub updated: usize,
    /// Removes that found their key.
    pub removed: usize,
    /// Operations rejected as unsupported by the serving backend.
    pub errors: usize,
}

impl BatchResult {
    /// Summarize a batch's per-op responses into merged counters.
    pub fn from_responses(responses: &[Response<u64>]) -> Self {
        let mut r = BatchResult {
            ops: responses.len(),
            ..Default::default()
        };
        for resp in responses {
            match resp {
                Response::Get(found) => r.hits += usize::from(found.is_some()),
                Response::Insert(new) => r.new_keys += usize::from(*new),
                Response::Update(hit) => r.updated += usize::from(*hit),
                Response::Remove(removed) => r.removed += usize::from(removed.is_some()),
                Response::Range(entries) => r.scanned_keys += entries.len(),
                Response::Error(_) => r.errors += 1,
            }
        }
        r
    }
}

/// A batch was rejected without being enqueued (rejection is
/// all-or-nothing). Carries the rejected batch back to the caller for retry
/// plus the typed [`reason`](Backpressure::reason) for the rejection.
#[derive(Debug)]
pub struct Backpressure {
    /// The rejected batch, returned for retry.
    pub batch: OpBatch,
    /// What was saturated.
    pub reason: BackpressureReason,
}

/// Why a non-blocking submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressureReason {
    /// A pipeline shard's bounded queue was at capacity.
    QueueFull {
        /// The saturated shard.
        shard: usize,
    },
    /// The submitting [`Session`]'s in-flight window was full.
    WindowFull,
    /// The batch touches a key range frozen by an in-flight migration.
    /// Transient like the other reasons: retry (the existing
    /// [`RetryPolicy`] backoff works unchanged) or block via
    /// [`ShardPipeline::submit`], and the batch goes through once the
    /// routing swap commits. Batches not touching the frozen range are
    /// unaffected — serving is never globally paused.
    Migrating,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            BackpressureReason::QueueFull { shard } => write!(
                f,
                "shard {shard} queue full; batch of {} ops rejected",
                self.batch.len()
            ),
            BackpressureReason::WindowFull => write!(
                f,
                "session in-flight window full; batch of {} ops rejected",
                self.batch.len()
            ),
            BackpressureReason::Migrating => write!(
                f,
                "batch of {} ops touches a migrating key range; retry after the routing swap",
                self.batch.len()
            ),
        }
    }
}

impl std::error::Error for Backpressure {}

/// Completion state shared between one batch's submitter and the workers
/// executing its sub-batches.
struct BatchShared {
    state: Mutex<BatchState>,
    ready: Condvar,
}

struct BatchState {
    /// One slot per submitted op, indexed by submission position.
    slots: Vec<Option<Response<u64>>>,
    /// Sub-batches still executing.
    pending: usize,
    /// Results already handed to the client.
    taken: bool,
}

impl BatchShared {
    fn new(ops: usize, pending: usize) -> Self {
        BatchShared {
            state: Mutex::new(BatchState {
                slots: (0..ops).map(|_| None).collect(),
                pending,
                taken: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// A batch already answered in full — every slot filled with a terminal
    /// [`IndexError::Shutdown`], nothing pending. Used to refuse submissions
    /// after [`ShardPipeline::shutdown`] without touching the queues.
    fn refused(ops: usize) -> Self {
        BatchShared {
            state: Mutex::new(BatchState {
                slots: (0..ops)
                    .map(|_| Some(Response::Error(IndexError::Shutdown)))
                    .collect(),
                pending: 0,
                taken: false,
            }),
            ready: Condvar::new(),
        }
    }
}

/// Handle to an in-flight batch: per-op [`Response`] slots filled by the
/// workers in submission order (slot `i` answers op `i` of the batch).
///
/// The handle never blocks unless asked to: poll with
/// [`is_ready`](SubmitHandle::is_ready) / [`try_take`](SubmitHandle::try_take),
/// bound the wait with [`wait_timeout`](SubmitHandle::wait_timeout), or give
/// up the non-blocking property explicitly with [`wait`](SubmitHandle::wait).
/// Dropping the handle is allowed at any time; the batch still executes
/// (fire-and-forget).
pub struct SubmitHandle {
    shared: Arc<BatchShared>,
    ops: usize,
}

impl SubmitHandle {
    /// Number of operations in the batch this handle tracks.
    pub fn len(&self) -> usize {
        self.ops
    }

    /// Whether the tracked batch was empty.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// Whether every operation of the batch has a result (non-blocking
    /// beyond an uncontended mutex).
    pub fn is_ready(&self) -> bool {
        self.shared.state.lock().expect("pipeline poisoned").pending == 0
    }

    /// Take the per-op responses if the batch has completed; `None` if it is
    /// still executing or the results were already taken.
    pub fn try_take(&mut self) -> Option<Vec<Response<u64>>> {
        let mut state = self.shared.state.lock().expect("pipeline poisoned");
        Self::take_locked(&mut state)
    }

    /// Wait up to `timeout` for completion; returns the responses on
    /// completion, `None` on timeout (or if already taken).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Vec<Response<u64>>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("pipeline poisoned");
        while state.pending > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _) = self
                .shared
                .ready
                .wait_timeout(state, remaining)
                .expect("pipeline poisoned");
            state = next;
        }
        Self::take_locked(&mut state)
    }

    /// Block until the batch completes and return the per-op responses.
    ///
    /// # Panics
    /// If the results were already taken via `try_take`/`wait_timeout`.
    pub fn wait(self) -> Vec<Response<u64>> {
        let mut state = self.shared.state.lock().expect("pipeline poisoned");
        while state.pending > 0 {
            state = self.shared.ready.wait(state).expect("pipeline poisoned");
        }
        Self::take_locked(&mut state).expect("batch results already taken")
    }

    fn take_locked(state: &mut BatchState) -> Option<Vec<Response<u64>>> {
        if state.pending > 0 || state.taken {
            return None;
        }
        state.taken = true;
        Some(
            std::mem::take(&mut state.slots)
                .into_iter()
                .map(|slot| slot.expect("completed batch has a response in every slot"))
                .collect(),
        )
    }
}

/// A per-shard unit of work queued to a worker.
struct Job {
    shard: usize,
    /// `(submission index, op)` pairs — the index addresses the result slot.
    ops: Vec<(usize, Op)>,
    shared: Arc<BatchShared>,
    /// Enqueue timestamp (telemetry epoch ns); 0 when telemetry is off.
    enqueue_ns: u64,
    /// The sampled span this sub-batch carries, if any.
    trace: Option<PendingSpan>,
    /// A drain barrier: carries no ops, executes nothing, and completes its
    /// handle as soon as the worker dequeues it. Because each worker's queue
    /// is FIFO, a completed barrier proves every job enqueued before it has
    /// finished — the elasticity controller's drain step.
    barrier: bool,
}

/// Submit-side half of a sampled span, completed by the executing worker.
struct PendingSpan {
    /// Index into `Job::ops` of the traced operation.
    pos: usize,
    /// Global sample ticket of the traced op.
    op_id: u64,
    submit_ns: u64,
    route_ns: u64,
}

/// State shared by the pipeline handle and its workers for queue accounting.
struct QueueGauge {
    /// Sub-batches queued or executing, per shard.
    depths: Vec<AtomicUsize>,
    /// Blocking submitters currently parked on `freed`; workers skip the
    /// notify lock entirely while this is zero (the common case).
    waiters: AtomicUsize,
    /// Capacity signal for blocking submitters.
    lock: Mutex<()>,
    freed: Condvar,
}

/// A fixed worker pool executing batches against a shared [`ShardedIndex`],
/// answering every operation with a typed [`Response`].
///
/// Dropping the pipeline shuts the workers down (they drain already-queued
/// jobs first, so submitted work is never lost and every outstanding
/// [`SubmitHandle`] still completes).
pub struct ShardPipeline<B: ConcurrentIndex<u64> + 'static> {
    index: Arc<ShardedIndex<u64, B>>,
    queues: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    gauge: Arc<QueueGauge>,
    queue_capacity: usize,
    telemetry: Option<Arc<Telemetry>>,
    durability: Option<Arc<DurableLog>>,
    /// Set by [`ShardPipeline::shutdown`]: submissions and queued work are
    /// refused with [`IndexError::Shutdown`] instead of executing.
    stopping: Arc<AtomicBool>,
}

impl<B: ConcurrentIndex<u64> + 'static> ShardPipeline<B> {
    /// Spawn `workers` threads serving `index` with the default per-shard
    /// queue bound. The worker count is clamped to at least 1 and at most
    /// the shard count (extra workers would never receive a shard
    /// assignment).
    pub fn new(index: Arc<ShardedIndex<u64, B>>, workers: usize) -> Self {
        Self::with_queue_capacity(index, workers, DEFAULT_QUEUE_CAPACITY)
    }

    /// Like [`ShardPipeline::new`] with an explicit per-shard queue bound
    /// (in sub-batches; clamped to at least 1).
    pub fn with_queue_capacity(
        index: Arc<ShardedIndex<u64, B>>,
        workers: usize,
        queue_capacity: usize,
    ) -> Self {
        Self::build(index, workers, queue_capacity, None, None)
    }

    /// Like [`ShardPipeline::with_queue_capacity`], with every submission
    /// and execution recorded into `telemetry` (counters, per-shard gauges
    /// and histograms, sampled spans — see `gre-telemetry`).
    ///
    /// # Panics
    /// If `telemetry` was sized for a different shard count than `index`.
    pub fn with_telemetry(
        index: Arc<ShardedIndex<u64, B>>,
        workers: usize,
        queue_capacity: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Self::with_services(index, workers, queue_capacity, Some(telemetry), None)
    }

    /// Like [`ShardPipeline::with_queue_capacity`], with every sub-batch's
    /// writes group-committed to `durability` before execution
    /// (log-then-execute; see the module docs' durability section).
    ///
    /// # Panics
    /// If `durability` was created for a different shard count than `index`.
    pub fn with_durability(
        index: Arc<ShardedIndex<u64, B>>,
        workers: usize,
        queue_capacity: usize,
        durability: Arc<DurableLog>,
    ) -> Self {
        Self::with_services(index, workers, queue_capacity, None, Some(durability))
    }

    /// The fully general constructor: telemetry and durability each attach
    /// independently (both optional; both `None` is
    /// [`ShardPipeline::with_queue_capacity`]).
    ///
    /// # Panics
    /// If `telemetry` or `durability` was sized for a different shard count
    /// than `index`.
    pub fn with_services(
        index: Arc<ShardedIndex<u64, B>>,
        workers: usize,
        queue_capacity: usize,
        telemetry: Option<Arc<Telemetry>>,
        durability: Option<Arc<DurableLog>>,
    ) -> Self {
        if let Some(t) = telemetry.as_deref() {
            assert_eq!(
                t.metrics().shard_count(),
                index.num_shards(),
                "telemetry shard count must match the served index"
            );
        }
        if let Some(d) = durability.as_deref() {
            assert_eq!(
                d.shards(),
                index.num_shards(),
                "durable log shard count must match the served index"
            );
        }
        Self::build(index, workers, queue_capacity, telemetry, durability)
    }

    fn build(
        index: Arc<ShardedIndex<u64, B>>,
        workers: usize,
        queue_capacity: usize,
        telemetry: Option<Arc<Telemetry>>,
        durability: Option<Arc<DurableLog>>,
    ) -> Self {
        let workers = workers.clamp(1, index.num_shards());
        let gauge = Arc::new(QueueGauge {
            depths: (0..index.num_shards())
                .map(|_| AtomicUsize::new(0))
                .collect(),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            freed: Condvar::new(),
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let (tx, rx) = channel::<Job>();
            let index = Arc::clone(&index);
            let gauge = Arc::clone(&gauge);
            let telemetry = telemetry.clone();
            let durability = durability.clone();
            let stopping = Arc::clone(&stopping);
            handles.push(std::thread::spawn(move || {
                // Capability metadata is static per backend; resolve it once
                // instead of per operation (composite meta takes locks).
                let index_meta = index.meta();
                let backend_metas: Vec<IndexMeta> = (0..index.num_shards())
                    .map(|s| index.backend(s).meta())
                    .collect();
                while let Ok(job) = rx.recv() {
                    if job.barrier {
                        // A drain barrier proves the queue ahead of it is
                        // empty; it carries no ops, so it skips durability,
                        // execution, and all telemetry (nothing entered the
                        // submit-side counters for it either — only the
                        // depth gauge, reversed here).
                        {
                            let mut state = job.shared.state.lock().expect("pipeline poisoned");
                            state.pending -= 1;
                            if state.pending == 0 {
                                job.shared.ready.notify_all();
                            }
                        }
                        gauge.depths[job.shard].fetch_sub(1, Ordering::SeqCst);
                        if gauge.waiters.load(Ordering::SeqCst) > 0 {
                            let _g = gauge.lock.lock().expect("pipeline poisoned");
                            gauge.freed.notify_all();
                        }
                        continue;
                    }
                    // Dequeue-side telemetry: queue wait and sub-batch size,
                    // stamped before execution so service time is separable.
                    let execute_ns = telemetry.as_deref().map(|t| {
                        let now = t.now_ns();
                        let scope = t.metrics().shard(job.shard);
                        scope
                            .hist(ShardHistId::QueueWaitNs)
                            .record(now.saturating_sub(job.enqueue_ns));
                        scope
                            .hist(ShardHistId::SubBatchSize)
                            .record(job.ops.len() as u64);
                        now
                    });
                    // The durability gate, before anything touches memory:
                    // group-commit this sub-batch's writes (one WAL record,
                    // one sync barrier per the log's policy). A refused
                    // group — log fail-stopped, sink error, or pipeline
                    // shutting down — means the *whole* sub-batch answers
                    // the terminal `Shutdown` error and executes nothing,
                    // so the in-memory state never runs ahead of the log.
                    let mut receipt = None;
                    let refused = if stopping.load(Ordering::SeqCst) {
                        true
                    } else if let Some(log) = durability.as_deref() {
                        let writes: Vec<Op> = job
                            .ops
                            .iter()
                            .filter(|(_, op)| op.is_write())
                            .map(|&(_, op)| op)
                            .collect();
                        if writes.is_empty() {
                            false
                        } else {
                            match log.log_group(job.shard, &writes) {
                                Ok(r) => {
                                    receipt = Some(r);
                                    false
                                }
                                Err(_) => true,
                            }
                        }
                    } else {
                        false
                    };
                    let (responses, batched_gets) = if refused {
                        let refusals = job
                            .ops
                            .iter()
                            .map(|&(slot, _)| (slot, Response::Error(IndexError::Shutdown)))
                            .collect();
                        (refusals, 0)
                    } else {
                        execute_sub_batch(&index, &backend_metas[job.shard], &index_meta, &job)
                    };
                    debug_assert_eq!(
                        responses.len(),
                        job.ops.len(),
                        "every submitted op must have exactly one response"
                    );
                    // All counters and gauges a snapshot must reconcile are
                    // updated *before* the responses become visible below:
                    // once a client observes its batch complete, a snapshot
                    // accounts for every one of its ops.
                    let complete_ns = telemetry.as_deref().map(|t| {
                        let now = t.now_ns();
                        let stripe = t.metrics().stripe(worker_id);
                        let scope = t.metrics().shard(job.shard);
                        scope
                            .hist(ShardHistId::ServiceNs)
                            .record(now.saturating_sub(execute_ns.unwrap_or(now)));
                        stripe.inc(CounterId::SubBatchesExecuted);
                        stripe.add(CounterId::BatchedGetOps, batched_gets as u64);
                        if let Some(r) = &receipt {
                            stripe.inc(CounterId::WalAppends);
                            stripe.add(CounterId::WalFsyncs, r.fsyncs);
                        }
                        count_outcomes(stripe, &responses);
                        scope.gauge_add(GaugeId::QueueDepth, -1);
                        scope.gauge_add(GaugeId::InFlightOps, -(job.ops.len() as i64));
                        scope.add_ops_completed(job.ops.len() as u64);
                        now
                    });
                    {
                        let mut state = job.shared.state.lock().expect("pipeline poisoned");
                        for (slot, response) in responses {
                            state.slots[slot] = Some(response);
                        }
                        state.pending -= 1;
                        if state.pending == 0 {
                            job.shared.ready.notify_all();
                        }
                    }
                    gauge.depths[job.shard].fetch_sub(1, Ordering::SeqCst);
                    // Wake blocking submitters — but only when someone is
                    // actually parked: a waiter registers itself (SeqCst)
                    // *before* its final capacity check, so either this load
                    // sees it, or the waiter's check sees the freed slot.
                    // Notifying under the lock closes the remaining window
                    // between a waiter's failed check and its wait.
                    if gauge.waiters.load(Ordering::SeqCst) > 0 {
                        let _g = gauge.lock.lock().expect("pipeline poisoned");
                        gauge.freed.notify_all();
                    }
                    if let Some(t) = telemetry.as_deref() {
                        if let (Some(ring), Some(span)) = (t.trace(), &job.trace) {
                            let (_, op) = job.ops[span.pos];
                            ring.record(SpanRecord {
                                op_id: span.op_id,
                                kind: op.kind(),
                                shard: job.shard as u32,
                                batch_ops: job.ops.len() as u32,
                                submit_ns: span.submit_ns,
                                route_ns: span.route_ns,
                                enqueue_ns: job.enqueue_ns,
                                execute_ns: execute_ns.unwrap_or(0),
                                complete_ns: complete_ns.unwrap_or(0),
                                respond_ns: t.now_ns(),
                            });
                            t.metrics().stripe(worker_id).inc(CounterId::TraceSpans);
                        }
                    }
                }
            }));
            queues.push(tx);
        }
        ShardPipeline {
            index,
            queues,
            workers: handles,
            gauge,
            queue_capacity: queue_capacity.max(1),
            telemetry,
            durability,
            stopping,
        }
    }

    /// The attached telemetry, when this pipeline was built with
    /// [`ShardPipeline::with_telemetry`].
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The attached durable log, when this pipeline was built with
    /// [`ShardPipeline::with_durability`].
    pub fn durability(&self) -> Option<&Arc<DurableLog>> {
        self.durability.as_ref()
    }

    /// Stop accepting and executing work. Every subsequent submission — and
    /// every sub-batch still queued when its worker reaches it — answers all
    /// its operations with [`Response::Error`]\([`IndexError::Shutdown`]),
    /// so a submitter can tell *refused* from *completed* per operation.
    /// Writes never half-apply: a refused sub-batch executes nothing.
    ///
    /// Idempotent; does not wait for in-flight work (drop the pipeline or
    /// wait on outstanding handles for that).
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
    }

    /// Whether [`ShardPipeline::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// The served index (for reads outside the batch path).
    pub fn index(&self) -> &Arc<ShardedIndex<u64, B>> {
        &self.index
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Per-shard queue bound, in sub-batches.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Split `batch` into per-shard sub-batches and enqueue them without
    /// blocking. Rejection is all-or-nothing: if any target shard's queue is
    /// at capacity, nothing is enqueued and the batch comes back inside
    /// [`Backpressure`]. Sub-batches of the same shard (across submissions)
    /// execute in submission order on the shard's pinned worker.
    pub fn try_submit(&self, batch: OpBatch) -> Result<SubmitHandle, Backpressure> {
        // A shut-down pipeline refuses instantly with a pre-completed
        // handle: every slot already holds the terminal `Shutdown` error,
        // the queues are never touched, and no telemetry is recorded (the
        // ops neither enter nor leave the pipeline, so gauges stay exact).
        if self.stopping.load(Ordering::SeqCst) {
            let ops = batch.ops.len();
            return Ok(SubmitHandle {
                shared: Arc::new(BatchShared::refused(ops)),
                ops,
            });
        }
        let shards = self.index.num_shards();
        // Route under the routing read guard and hold it through enqueue:
        // a routing swap (split/merge commit) cannot land between splitting
        // the batch and queueing it, so every enqueued job was routed by the
        // partitioner its worker will observe as current or older — and FIFO
        // order makes older always safe (the freeze protocol drains it).
        let routing = self.index.routing();
        if let Some(f) = routing.frozen {
            let touches = batch.ops.iter().any(|op| match *op {
                Op::Range(spec) => f.intersects_scan(spec.start, spec.end),
                Op::Get(k) | Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => f.contains(k),
            });
            if touches {
                if let Some(t) = self.telemetry.as_deref() {
                    t.metrics()
                        .stripe(self.workers.len())
                        .inc(CounterId::BatchesRejected);
                }
                return Err(Backpressure {
                    batch,
                    reason: BackpressureReason::Migrating,
                });
            }
        }
        let ops = batch.ops.len();
        // Submit-side span timestamps; both stay 0 when telemetry is off,
        // keeping the uninstrumented hot path clock-free.
        let submit_ns = self.telemetry.as_deref().map_or(0, Telemetry::now_ns);
        let sub_batches =
            split_indexed_ops_by_shard(&batch.ops, shards, |k| routing.partitioner.shard_of(k));
        let route_ns = self.telemetry.as_deref().map_or(0, Telemetry::now_ns);

        // Reserve queue slots before enqueueing anything, so a rejected
        // batch leaves no partial work behind.
        let mut reserved: Vec<usize> = Vec::new();
        for (shard, sub) in sub_batches.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let depth = self.gauge.depths[shard].fetch_add(1, Ordering::SeqCst);
            if depth >= self.queue_capacity {
                self.gauge.depths[shard].fetch_sub(1, Ordering::SeqCst);
                for &s in &reserved {
                    self.gauge.depths[s].fetch_sub(1, Ordering::SeqCst);
                }
                if let Some(t) = self.telemetry.as_deref() {
                    t.metrics()
                        .stripe(self.workers.len())
                        .inc(CounterId::BatchesRejected);
                }
                return Err(Backpressure {
                    batch,
                    reason: BackpressureReason::QueueFull { shard },
                });
            }
            reserved.push(shard);
        }

        // Accepted: account the batch and pick the traced op (if the 1-in-N
        // sampler lands inside this batch). Sampling happens only after
        // acceptance so rejected batches never consume sample tickets.
        let mut enqueue_ns = 0u64;
        let mut traced: Option<(usize, PendingSpan)> = None;
        if let Some(t) = self.telemetry.as_deref() {
            enqueue_ns = t.now_ns();
            // Submitters share the stripe after the workers' (wraps when
            // telemetry was sized with exactly `workers` stripes).
            let stripe = t.metrics().stripe(self.workers.len());
            stripe.inc(CounterId::BatchesSubmitted);
            stripe.add(CounterId::OpsSubmitted, ops as u64);
            t.metrics()
                .global(GlobalHistId::BatchOps)
                .record(ops as u64);
            for (shard, sub) in sub_batches.iter().enumerate() {
                if !sub.is_empty() {
                    let scope = t.metrics().shard(shard);
                    scope.gauge_add(GaugeId::QueueDepth, 1);
                    scope.gauge_add(GaugeId::InFlightOps, sub.len() as i64);
                }
            }
            if t.trace().is_some() {
                if let Some((op_id, offset)) = t.sampler().claim(ops as u64) {
                    traced = sub_batches.iter().enumerate().find_map(|(shard, sub)| {
                        sub.iter().position(|&(i, _)| i == offset).map(|pos| {
                            (
                                shard,
                                PendingSpan {
                                    pos,
                                    op_id,
                                    submit_ns,
                                    route_ns,
                                },
                            )
                        })
                    });
                }
            }
        }

        let shared = Arc::new(BatchShared::new(ops, reserved.len()));
        for (shard, sub) in sub_batches.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let trace = match &mut traced {
                Some((s, _)) if *s == shard => traced.take().map(|(_, span)| span),
                _ => None,
            };
            self.queues[shard % self.queues.len()]
                .send(Job {
                    shard,
                    ops: sub,
                    shared: Arc::clone(&shared),
                    enqueue_ns,
                    trace,
                    barrier: false,
                })
                .expect("pipeline worker exited early");
        }
        drop(routing);
        Ok(SubmitHandle { shared, ops })
    }

    /// Enqueue a no-op barrier on every worker queue and return a handle
    /// that completes once each worker has dequeued its barrier. Because
    /// workers serve their queues in FIFO order, waiting on the handle
    /// proves every job submitted before this call has fully executed — the
    /// drain step of the elasticity protocol (freeze, **drain**, seal,
    /// move, commit).
    ///
    /// Barriers bypass the capacity reservation (they must get through even
    /// when queues are saturated) but still tick the depth gauge so the
    /// worker-side decrement stays balanced. They work on a shutting-down
    /// pipeline too: workers drain queued jobs before exiting.
    pub fn drain_barrier(&self) -> SubmitHandle {
        let shared = Arc::new(BatchShared::new(0, self.queues.len()));
        for (w, queue) in self.queues.iter().enumerate() {
            self.gauge.depths[w].fetch_add(1, Ordering::SeqCst);
            queue
                .send(Job {
                    shard: w,
                    ops: Vec::new(),
                    shared: Arc::clone(&shared),
                    enqueue_ns: 0,
                    trace: None,
                    barrier: true,
                })
                .expect("pipeline worker exited early");
        }
        SubmitHandle { shared, ops: 0 }
    }

    /// Submit, waiting for queue capacity when a shard is saturated (the
    /// blocking counterpart of [`ShardPipeline::try_submit`]).
    pub fn submit(&self, batch: OpBatch) -> SubmitHandle {
        // Uncontended fast path: no lock at all, so concurrent submitters
        // split and enqueue their batches fully in parallel.
        let mut batch = batch;
        loop {
            match self.try_submit(batch) {
                Ok(handle) => return handle,
                Err(bp) if bp.reason == BackpressureReason::Migrating => {
                    // Blocked on a frozen range, not on capacity: park on
                    // the routing condvar (woken by the commit/abort of the
                    // migration) instead of the queue-freed condvar.
                    batch = bp.batch;
                    self.index.wait_routing_change();
                }
                Err(bp) => {
                    batch = bp.batch;
                    break;
                }
            }
        }
        // Slow path: register as a waiter (so workers notify), then retry
        // under the capacity lock. The register-then-check order pairs with
        // the workers' free-then-check-waiters order; the wait timeout is a
        // belt-and-braces backstop.
        self.gauge.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.gauge.lock.lock().expect("pipeline poisoned");
        loop {
            match self.try_submit(batch) {
                Ok(handle) => {
                    drop(guard);
                    self.gauge.waiters.fetch_sub(1, Ordering::SeqCst);
                    return handle;
                }
                Err(bp) => batch = bp.batch,
            }
            let (next, _) = self
                .gauge
                .freed
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("pipeline poisoned");
            guard = next;
        }
    }

    /// Submit and wait: the synchronous convenience wrapper returning merged
    /// counters (the old `submit(..).wait()` surface in one call).
    pub fn execute(&self, batch: OpBatch) -> BatchResult {
        BatchResult::from_responses(&self.submit(batch).wait())
    }

    /// [`ShardPipeline::try_submit`] with bounded, jittered retries on
    /// [`BackpressureReason::QueueFull`] per `policy` (see
    /// [`RetryPolicy`]): each rejection sleeps a full-jitter backoff drawn
    /// from `rng`, then retries; after `policy.max_attempts` total attempts
    /// the last [`Backpressure`] is returned with the batch intact.
    ///
    /// Unlike [`ShardPipeline::submit`] this never parks on the capacity
    /// condvar — the jittered sleeps both bound the total wait and
    /// decorrelate competing submitters during saturation.
    pub fn submit_with_retry<R: RngCore>(
        &self,
        batch: OpBatch,
        policy: &RetryPolicy,
        rng: &mut R,
    ) -> Result<SubmitHandle, Backpressure> {
        let mut batch = batch;
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            match self.try_submit(batch) {
                Ok(handle) => return Ok(handle),
                Err(bp) if attempt + 1 < attempts => {
                    batch = bp.batch;
                    std::thread::sleep(policy.backoff(attempt, rng));
                }
                Err(bp) => return Err(bp),
            }
        }
        unreachable!("loop always returns on the last attempt")
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Drop for ShardPipeline<B> {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop after it drains
        // the jobs already queued.
        self.queues.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With the workers gone nothing else can append: flush any groups an
        // `EveryN` sync policy left unsynced, so a clean drop leaves the log
        // durable up to the last executed group.
        if let Some(log) = &self.durability {
            let _ = log.sync_all();
        }
    }
}

/// Execute one per-shard sub-batch, producing `(slot, response)` pairs.
/// Point ops hit the owning backend directly; scans go through the
/// composite for cross-shard stitching, gated on the composite's merged
/// capability flags.
///
/// Maximal runs of **consecutive** lookups execute through the backend's
/// [`ConcurrentIndex::get_batch`], so interleaved overrides (ALEX+'s
/// software-pipelined search) engage automatically for `Request::Get`
/// traffic. Only consecutive gets are grouped — a get is never hoisted past
/// a write that precedes it in the sub-batch, preserving the pipeline's
/// per-shard FIFO semantics (read-your-write within a batch). Lookups are
/// never capability-gated (mirroring `Request::execute`), so every slot in
/// a batched run answers `Response::Get`.
fn execute_sub_batch<B: ConcurrentIndex<u64>>(
    index: &ShardedIndex<u64, B>,
    backend_meta: &IndexMeta,
    index_meta: &IndexMeta,
    job: &Job,
) -> (Vec<(usize, Response<u64>)>, usize) {
    let backend = index.backend(job.shard);
    let mut out = Vec::with_capacity(job.ops.len());
    let mut batched_gets = 0usize;
    let mut keys: Vec<u64> = Vec::new();
    let mut results: Vec<Option<gre_core::Payload>> = Vec::new();
    let mut i = 0usize;
    while i < job.ops.len() {
        let run_end = i + job.ops[i..]
            .iter()
            .take_while(|(_, op)| matches!(op, Op::Get(_)))
            .count();
        if run_end - i >= 2 {
            keys.clear();
            keys.extend(job.ops[i..run_end].iter().map(|&(_, op)| match op {
                Op::Get(k) => k,
                _ => unreachable!("run contains only gets"),
            }));
            backend.get_batch(&keys, &mut results);
            debug_assert_eq!(results.len(), keys.len());
            batched_gets += keys.len();
            for (&(slot, _), result) in job.ops[i..run_end].iter().zip(results.drain(..)) {
                out.push((slot, Response::Get(result)));
            }
            i = run_end;
        } else {
            let (slot, op) = job.ops[i];
            let response = match op {
                Op::Range(_) => op.execute(index, index_meta),
                _ => op.execute(backend, backend_meta),
            };
            out.push((slot, response));
            i += 1;
        }
    }
    (out, batched_gets)
}

/// Fold one sub-batch's typed responses into the worker's counter stripe.
/// Accumulates locally and issues one relaxed add per touched counter, so
/// the per-op cost is a branchy match, not an atomic op.
///
/// The outcome definitions mirror `gre_workloads::driver::Tally::record`
/// exactly — that equivalence is what lets telemetry counters be
/// cross-checked against the driver's ground-truth tally (see the
/// reconciliation test in `tests/telemetry_pipeline.rs`).
fn count_outcomes(stripe: &CounterStripe, responses: &[(usize, Response<u64>)]) {
    let (mut hits, mut new_keys, mut updated, mut removed) = (0u64, 0u64, 0u64, 0u64);
    let (mut scanned, mut scans, mut errors) = (0u64, 0u64, 0u64);
    for (_, resp) in responses {
        match resp {
            Response::Get(found) => hits += u64::from(found.is_some()),
            Response::Insert(new) => new_keys += u64::from(*new),
            Response::Update(hit) => updated += u64::from(*hit),
            Response::Remove(r) => removed += u64::from(r.is_some()),
            Response::Range(entries) => {
                scans += 1;
                scanned += entries.len() as u64;
            }
            Response::Error(_) => errors += 1,
        }
    }
    stripe.add(CounterId::OpsCompleted, responses.len() as u64);
    for (id, n) in [
        (CounterId::GetHits, hits),
        (CounterId::InsertedNew, new_keys),
        (CounterId::Updated, updated),
        (CounterId::Removed, removed),
        (CounterId::ScannedKeys, scanned),
        (CounterId::RangeScans, scans),
        (CounterId::OpErrors, errors),
    ] {
        if n > 0 {
            stripe.add(id, n);
        }
    }
}

/// A client-side handle that pipelines many in-flight batches over one
/// [`ShardPipeline`], handing results back in **FIFO submission order**.
///
/// A session caps its own **in-flight** window (`max_inflight`): submitting
/// past the cap first waits out the oldest batch, so a single client cannot
/// monopolize the pipeline's bounded shard queues. Completed-but-unreceived
/// results are *not* bounded — they accumulate inside the session until the
/// client consumes them through [`try_recv`](Session::try_recv) /
/// [`recv`](Session::recv) / [`drain`](Session::drain), so a client that
/// only ever submits retains one response buffer per batch.
///
/// Dropping a session mid-flight is safe: its outstanding batches still
/// execute (the pipeline's drop-drains guarantee), only the results are
/// discarded.
pub struct Session<'p, B: ConcurrentIndex<u64> + 'static> {
    pipeline: &'p ShardPipeline<B>,
    inflight: VecDeque<SubmitHandle>,
    completed: VecDeque<Vec<Response<u64>>>,
    max_inflight: usize,
}

/// Default cap on a session's in-flight batches.
pub const DEFAULT_MAX_INFLIGHT: usize = 32;

impl<'p, B: ConcurrentIndex<u64> + 'static> Session<'p, B> {
    /// Open a session over `pipeline` with the default in-flight window.
    pub fn new(pipeline: &'p ShardPipeline<B>) -> Self {
        Self::with_max_inflight(pipeline, DEFAULT_MAX_INFLIGHT)
    }

    /// Open a session with an explicit in-flight window (clamped to ≥ 1).
    pub fn with_max_inflight(pipeline: &'p ShardPipeline<B>, max_inflight: usize) -> Self {
        Session {
            pipeline,
            inflight: VecDeque::new(),
            completed: VecDeque::new(),
            max_inflight: max_inflight.max(1),
        }
    }

    /// Batches submitted but not yet returned through `recv`/`try_recv`.
    pub fn pending(&self) -> usize {
        self.inflight.len() + self.completed.len()
    }

    /// Submit a batch, blocking only when the session's in-flight window or
    /// a shard queue is full (never on the batch's own completion).
    pub fn submit(&mut self, batch: OpBatch) {
        while self.inflight.len() >= self.max_inflight {
            let handle = self.inflight.pop_front().expect("inflight not empty");
            self.completed.push_back(handle.wait());
        }
        self.inflight.push_back(self.pipeline.submit(batch));
        self.record_window();
    }

    /// Non-blocking submit: `Err(Backpressure)` if the in-flight window
    /// ([`BackpressureReason::WindowFull`]) or a shard queue
    /// ([`BackpressureReason::QueueFull`]) is full, with the batch returned
    /// for retry.
    pub fn try_submit(&mut self, batch: OpBatch) -> Result<(), Backpressure> {
        self.harvest_ready();
        if self.inflight.len() >= self.max_inflight {
            return Err(Backpressure {
                batch,
                reason: BackpressureReason::WindowFull,
            });
        }
        self.inflight.push_back(self.pipeline.try_submit(batch)?);
        self.record_window();
        Ok(())
    }

    /// Submit with the session's own backpressure handling driven by
    /// `policy`: a full in-flight window ([`BackpressureReason::WindowFull`])
    /// waits out the session's *oldest* batch — progress, not contention, so
    /// it costs no retry attempt — while a full shard queue
    /// ([`BackpressureReason::QueueFull`]) sleeps a jittered backoff and
    /// retries, up to `policy.max_attempts` total submission attempts. The
    /// final rejection hands the batch back inside `Err(Backpressure)`.
    pub fn submit_with_retry<R: RngCore>(
        &mut self,
        batch: OpBatch,
        policy: &RetryPolicy,
        rng: &mut R,
    ) -> Result<(), Backpressure> {
        let mut batch = batch;
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match self.try_submit(batch) {
                Ok(()) => return Ok(()),
                Err(bp) if bp.reason == BackpressureReason::WindowFull => {
                    batch = bp.batch;
                    let handle = self
                        .inflight
                        .pop_front()
                        .expect("window full implies inflight");
                    self.completed.push_back(handle.wait());
                }
                Err(bp) if attempt + 1 < attempts => {
                    batch = bp.batch;
                    std::thread::sleep(policy.backoff(attempt, rng));
                    attempt += 1;
                }
                Err(bp) => return Err(bp),
            }
        }
    }

    /// Sample the in-flight window occupancy (including the batch just
    /// submitted) into the session-window histogram.
    fn record_window(&self) {
        if let Some(t) = self.pipeline.telemetry() {
            t.metrics()
                .global(GlobalHistId::SessionWindow)
                .record(self.inflight.len() as u64);
        }
    }

    /// The oldest unreturned batch's responses, if it has completed
    /// (non-blocking). `None` when nothing is pending or the oldest batch is
    /// still executing — FIFO order means a completed newer batch is never
    /// returned early.
    pub fn try_recv(&mut self) -> Option<Vec<Response<u64>>> {
        if let Some(done) = self.completed.pop_front() {
            return Some(done);
        }
        let front = self.inflight.front_mut()?;
        let responses = front.try_take()?;
        self.inflight.pop_front();
        Some(responses)
    }

    /// Block for the oldest unreturned batch's responses; `None` when the
    /// session has nothing pending.
    pub fn recv(&mut self) -> Option<Vec<Response<u64>>> {
        if let Some(done) = self.completed.pop_front() {
            return Some(done);
        }
        Some(self.inflight.pop_front()?.wait())
    }

    /// Wait out every pending batch and return all remaining responses in
    /// submission order.
    pub fn drain(&mut self) -> Vec<Vec<Response<u64>>> {
        let mut all: Vec<Vec<Response<u64>>> = self.completed.drain(..).collect();
        all.extend(self.inflight.drain(..).map(SubmitHandle::wait));
        all
    }

    fn harvest_ready(&mut self) {
        while let Some(front) = self.inflight.front_mut() {
            match front.try_take() {
                Some(responses) => {
                    self.inflight.pop_front();
                    self.completed.push_back(responses);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use gre_core::index::MutexIndex;
    use gre_core::{Index, IndexMeta, Payload, RangeSpec};
    use std::collections::BTreeMap;

    /// Single-threaded BTreeMap index, wrapped per shard in MutexIndex.
    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn update(&mut self, key: u64, value: Payload) -> bool {
            match self.map.get_mut(&key) {
                Some(v) => {
                    *v = value;
                    true
                }
                None => false,
            }
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn pipeline(shards: usize, workers: usize) -> ShardPipeline<MutexIndex<MapIndex>> {
        let mut idx = ShardedIndex::from_factory(Partitioner::range(shards), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        let entries: Vec<(u64, Payload)> = (0..4_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&entries);
        ShardPipeline::new(Arc::new(idx), workers)
    }

    #[test]
    fn responses_come_back_typed_and_in_submission_order() {
        let p = pipeline(4, 2);
        assert_eq!(p.worker_count(), 2);
        let batch = OpBatch::new(vec![
            Op::Get(0),                             // hit
            Op::Get(1),                             // miss (odd keys absent)
            Op::Insert(1, 10),                      // new key
            Op::Insert(0, 99),                      // overwrite, not a new key
            Op::Update(2, 77),                      // present
            Op::Update(9_999, 0),                   // absent
            Op::Remove(4),                          // present, payload 2
            Op::Remove(5),                          // absent
            Op::Range(RangeSpec::new(6, 3)),        // keys 6, 8, 10
            Op::Range(RangeSpec::bounded(6, 8, 9)), // keys 6, 8
        ]);
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        let responses = p.submit(batch).wait();
        assert_eq!(
            responses,
            vec![
                Response::Get(Some(0)),
                Response::Get(None),
                Response::Insert(true),
                Response::Insert(false),
                Response::Update(true),
                Response::Update(false),
                Response::Remove(Some(2)),
                Response::Remove(None),
                Response::Range(vec![(6, 3), (8, 4), (10, 5)]),
                Response::Range(vec![(6, 3), (8, 4)]),
            ]
        );
        let r = BatchResult::from_responses(&responses);
        assert_eq!(r.ops, 10);
        assert_eq!(r.hits, 1);
        assert_eq!(r.new_keys, 1);
        assert_eq!(r.updated, 1);
        assert_eq!(r.removed, 1);
        assert_eq!(r.scanned_keys, 5);
        assert_eq!(r.errors, 0);
        // The writes really landed.
        assert_eq!(p.index().get(1), Some(10));
        assert_eq!(p.index().get(0), Some(99));
        assert_eq!(p.index().get(2), Some(77));
        assert_eq!(p.index().get(4), None);
    }

    #[test]
    fn batched_get_runs_keep_submission_order_and_fifo_writes() {
        let p = pipeline(2, 2);
        // A long run of gets (exercising the batched path), a write in the
        // middle (splitting the runs), then gets that must observe it.
        let mut ops: Vec<Op> = (0..40u64).map(|i| Op::Get(i * 2)).collect();
        ops.push(Op::Insert(99_999, 7)); // odd key: previously absent
        ops.push(Op::Get(99_999));
        ops.push(Op::Get(1)); // still a miss
        let responses = p.submit(OpBatch::new(ops)).wait();
        for i in 0..40u64 {
            assert_eq!(responses[i as usize], Response::Get(Some(i)), "slot {i}");
        }
        assert_eq!(responses[40], Response::Insert(true));
        assert_eq!(
            responses[41],
            Response::Get(Some(7)),
            "a get after a write to the same shard must see it"
        );
        assert_eq!(responses[42], Response::Get(None));
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let p = pipeline(4, 4);
        let mut handle = p.submit(OpBatch::default());
        assert!(handle.is_ready());
        assert!(handle.is_empty());
        assert_eq!(handle.try_take(), Some(vec![]));
        // Results can only be taken once.
        assert_eq!(handle.try_take(), None);
        assert_eq!(p.execute(OpBatch::default()), BatchResult::default());
    }

    #[test]
    fn handle_polling_is_nonblocking_and_single_shot() {
        let p = pipeline(4, 2);
        let mut handle = p.submit(OpBatch::new(vec![Op::Get(0), Op::Insert(7, 7)]));
        // Poll to completion without ever calling wait().
        let responses = loop {
            if let Some(r) = handle.try_take() {
                break r;
            }
            std::thread::yield_now();
        };
        assert_eq!(responses[0], Response::Get(Some(0)));
        assert_eq!(responses[1], Response::Insert(true));
        assert!(handle.is_ready(), "ready stays true after take");
        assert_eq!(handle.try_take(), None, "results are single-shot");
        assert_eq!(handle.wait_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn wait_timeout_returns_results_within_deadline() {
        let p = pipeline(4, 2);
        let mut handle = p.submit(OpBatch::new(vec![Op::Get(0)]));
        let responses = handle
            .wait_timeout(Duration::from_secs(30))
            .expect("one-op batch completes well within 30s");
        assert_eq!(responses, vec![Response::Get(Some(0))]);
    }

    #[test]
    fn per_shard_fifo_makes_same_key_writes_deterministic() {
        let p = pipeline(8, 3);
        // 100 successive single-op batches updating the same key: FIFO per
        // shard means the last submitted value must win, every time.
        for round in 0..100u64 {
            p.submit(OpBatch::new(vec![Op::Insert(0, round)]));
        }
        let r = p.execute(OpBatch::new(vec![Op::Get(0)]));
        assert_eq!(r.hits, 1);
        assert_eq!(p.index().get(0), Some(99));
    }

    #[test]
    fn worker_count_clamps_to_shard_count() {
        let p = pipeline(2, 16);
        assert_eq!(p.worker_count(), 2);
        let p = pipeline(4, 0);
        assert_eq!(p.worker_count(), 1);
    }

    #[test]
    fn drop_drains_queued_work() {
        let total;
        {
            let p = pipeline(4, 2);
            for i in 0..50u64 {
                // Handles are intentionally dropped: fire-and-forget.
                p.submit(OpBatch::new(vec![Op::Insert(100_001 + 2 * i, i)]));
            }
            total = Arc::clone(p.index());
            // p drops here; workers must finish the queued inserts first.
        }
        assert_eq!(total.len(), 4_000 + 50);
    }

    #[test]
    fn unsupported_ops_answer_errors_not_silence() {
        // A backend without delete or range support: remove/scan requests
        // must fail loudly per-op while the rest of the batch executes.
        struct NoDeleteIndex(MapIndex);
        impl Index<u64> for NoDeleteIndex {
            fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
                self.0.bulk_load(entries);
            }
            fn get(&self, key: u64) -> Option<Payload> {
                self.0.get(key)
            }
            fn insert(&mut self, key: u64, value: Payload) -> bool {
                self.0.insert(key, value)
            }
            fn update(&mut self, key: u64, value: Payload) -> bool {
                self.0.update(key, value)
            }
            fn remove(&mut self, key: u64) -> Option<Payload> {
                self.0.remove(key)
            }
            fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
                self.0.range(spec, out)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn memory_usage(&self) -> usize {
                self.0.memory_usage()
            }
            fn meta(&self) -> IndexMeta {
                IndexMeta {
                    supports_delete: false,
                    supports_range: false,
                    ..self.0.meta()
                }
            }
        }

        let mut idx = ShardedIndex::from_factory(Partitioner::range(2), |_| {
            MutexIndex::new(NoDeleteIndex(MapIndex::default()), "nodelete")
        });
        let entries: Vec<(u64, Payload)> = (0..100u64).map(|i| (i, i)).collect();
        idx.bulk_load(&entries);
        let p = ShardPipeline::new(Arc::new(idx), 2);
        let responses = p
            .submit(OpBatch::new(vec![
                Op::Get(1),
                Op::Remove(1),
                Op::Range(RangeSpec::new(0, 5)),
            ]))
            .wait();
        assert_eq!(responses[0], Response::Get(Some(1)));
        assert!(responses[1].is_error(), "remove must be rejected");
        assert!(responses[2].is_error(), "range must be rejected");
        // The rejected remove really did not execute.
        assert_eq!(p.index().get(1), Some(1));
        assert_eq!(BatchResult::from_responses(&responses).errors, 2);
    }

    #[test]
    fn concurrent_submitters_lose_no_updates() {
        let p = pipeline(8, 4);
        let p = &p;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for b in 0..20u64 {
                        let ops: Vec<Op> = (0..50u64)
                            .map(|i| {
                                let k = 1_000_000 + t * 1_000_000 + b * 50 + i;
                                Op::Insert(k, k)
                            })
                            .collect();
                        let r = p.execute(OpBatch::new(ops));
                        assert_eq!(r.new_keys, 50);
                    }
                });
            }
        });
        assert_eq!(p.index().len(), 4_000 + 4 * 20 * 50);
    }

    #[test]
    fn session_returns_fifo_results_while_pipelining() {
        let p = pipeline(4, 2);
        let mut session = Session::with_max_inflight(&p, 4);
        // 10 batches in flight; each writes then reads its own key.
        for b in 0..10u64 {
            session.submit(OpBatch::new(vec![
                Op::Insert(100_001 + 2 * b, b),
                Op::Get(100_001 + 2 * b),
            ]));
        }
        let mut got = Vec::new();
        while let Some(responses) = session.recv() {
            got.push(responses);
        }
        assert_eq!(got.len(), 10);
        for (b, responses) in got.iter().enumerate() {
            // FIFO: batch b's responses come back b-th, and the read-your-
            // write inside a batch holds (same shard ⇒ same FIFO queue).
            assert_eq!(responses[0], Response::Insert(true), "batch {b}");
            assert_eq!(responses[1], Response::Get(Some(b as u64)), "batch {b}");
        }
        assert_eq!(session.pending(), 0);
        assert!(session.try_recv().is_none());
    }

    #[test]
    fn session_drain_collects_everything_in_order() {
        let p = pipeline(4, 2);
        let mut session = Session::new(&p);
        for b in 0..5u64 {
            session.submit(OpBatch::new(vec![Op::Insert(200_001 + 2 * b, b)]));
        }
        let all = session.drain();
        assert_eq!(all.len(), 5);
        for (b, responses) in all.iter().enumerate() {
            assert_eq!(responses, &vec![Response::Insert(true)], "batch {b}");
        }
        assert_eq!(session.pending(), 0);
    }

    #[test]
    fn session_window_caps_inflight_batches() {
        let p = pipeline(2, 1);
        let mut session = Session::with_max_inflight(&p, 2);
        for b in 0..6u64 {
            session.submit(OpBatch::new(vec![Op::Get(2 * b)]));
            assert!(session.inflight.len() <= 2, "window respected");
        }
        assert_eq!(session.drain().len(), 6);
    }

    #[test]
    fn shutdown_answers_everything_with_terminal_errors() {
        let p = pipeline(4, 2);
        assert!(!p.is_shutting_down());
        p.shutdown();
        assert!(p.is_shutting_down());
        let responses = p
            .submit(OpBatch::new(vec![
                Op::Get(0),
                Op::Insert(1, 1),
                Op::Remove(0),
            ]))
            .wait();
        assert_eq!(
            responses,
            vec![Response::Error(IndexError::Shutdown); 3],
            "a shut-down pipeline answers every op with the terminal error"
        );
        // The refused write and delete never touched the store.
        assert_eq!(p.index().get(1), None);
        assert_eq!(p.index().get(0), Some(0));
        // try_submit agrees: refused, not backpressured.
        let handle = p.try_submit(OpBatch::new(vec![Op::Get(2)])).unwrap();
        assert_eq!(handle.wait(), vec![Response::Error(IndexError::Shutdown)]);
    }

    #[test]
    fn durable_pipeline_group_commits_writes_before_execution() {
        use gre_durability::util::TempDir;
        use gre_durability::{DurableLog, Recovery, SyncPolicy};

        let tmp = TempDir::new("pipeline-wal");
        let shards = 4usize;
        let mut idx = ShardedIndex::from_factory(Partitioner::range(shards), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        let entries: Vec<(u64, Payload)> = (0..1_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&entries);
        let log = DurableLog::create(tmp.path(), shards, SyncPolicy::EveryGroup).unwrap();
        // The bulk load bypasses the pipeline: checkpoint it so recovery
        // starts from the loaded state.
        let partitioner = Partitioner::range(shards);
        for shard in 0..shards {
            let mine: Vec<(u64, Payload)> = entries
                .iter()
                .copied()
                .filter(|&(k, _)| partitioner.shard_of(k) == shard)
                .collect();
            log.checkpoint(shard, &mine).unwrap();
        }
        let p = ShardPipeline::with_durability(Arc::new(idx), 2, DEFAULT_QUEUE_CAPACITY, log);
        assert!(p.durability().is_some());
        // Mixed batches: reads must not be logged, writes must all be.
        for b in 0..20u64 {
            let responses = p
                .submit(OpBatch::new(vec![
                    Op::Get(2 * b),
                    Op::Insert(100_001 + 2 * b, b),
                    Op::Update(2 * b, b + 1),
                    Op::Remove(2 * b + 200),
                ]))
                .wait();
            assert!(responses.iter().all(|r| !r.is_error()));
        }
        let live = Arc::clone(p.index());
        let stats = p.durability().unwrap().stats();
        assert!(stats.appends > 0 && stats.fsyncs > 0);
        drop(p);

        // Crash-equivalent check: rebuild purely from disk and compare.
        let rec = Recovery::recover(tmp.path()).unwrap();
        assert!(rec.is_clean());
        let mut replayed = MutexIndex::new(MapIndex::default(), "replayed");
        rec.replay_into(&mut replayed);
        assert_eq!(replayed.len(), live.len());
        for k in (0..1_000u64)
            .map(|i| i * 2)
            .chain((0..20).map(|b| 100_001 + 2 * b))
        {
            assert_eq!(replayed.get(k), live.get(k), "key {k}");
        }
    }

    #[test]
    fn wal_counters_reconcile_with_log_stats_when_both_services_attach() {
        use gre_durability::util::TempDir;
        use gre_durability::{DurableLog, SyncPolicy};
        use gre_telemetry::CounterId;

        let tmp = TempDir::new("pipeline-wal-telemetry");
        let shards = 2usize;
        let mut idx = ShardedIndex::from_factory(Partitioner::range(shards), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        idx.bulk_load(&[(0, 0), (u64::MAX / 2 + 1, 1)]);
        let log = DurableLog::create(tmp.path(), shards, SyncPolicy::EveryGroup).unwrap();
        let telemetry = Telemetry::shared(shards, 2);
        let p = ShardPipeline::with_services(
            Arc::new(idx),
            2,
            DEFAULT_QUEUE_CAPACITY,
            Some(Arc::clone(&telemetry)),
            Some(log),
        );
        for b in 0..16u64 {
            // One read-only batch per write batch: reads are neither logged
            // nor counted as WAL activity.
            p.submit(OpBatch::new(vec![Op::Get(0), Op::Get(u64::MAX / 2 + 1)]))
                .wait();
            p.submit(OpBatch::new(vec![
                Op::Insert(10 + b, b),
                Op::Insert(u64::MAX / 2 + 10 + b, b),
            ]))
            .wait();
        }
        let stats = p.durability().unwrap().stats();
        drop(p);

        let snap = telemetry.snapshot();
        assert!(stats.appends > 0 && stats.fsyncs > 0);
        assert_eq!(snap.counter(CounterId::WalAppends), stats.appends);
        assert_eq!(snap.counter(CounterId::WalFsyncs), stats.fsyncs);
    }

    #[test]
    fn submit_with_retry_delivers_or_returns_the_batch() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut idx = ShardedIndex::from_factory(Partitioner::range(1), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        idx.bulk_load(&[(0, 0)]);
        let p = ShardPipeline::with_queue_capacity(Arc::new(idx), 1, 2);
        let policy = RetryPolicy::new(3, Duration::from_micros(10), Duration::from_micros(100));
        let mut rng = StdRng::seed_from_u64(42);

        let mut accepted = Vec::new();
        let mut rejected = 0usize;
        for i in 0..500u64 {
            match p.submit_with_retry(OpBatch::new(vec![Op::Insert(10 + i, i)]), &policy, &mut rng)
            {
                Ok(handle) => accepted.push(handle),
                Err(bp) => {
                    // The final rejection hands the batch back intact.
                    assert_eq!(bp.batch.ops, vec![Op::Insert(10 + i, i)]);
                    rejected += 1;
                }
            }
        }
        let n = accepted.len();
        for handle in accepted {
            assert_eq!(handle.wait(), vec![Response::Insert(true)]);
        }
        assert_eq!(p.index().len(), 1 + n);
        assert_eq!(n + rejected, 500);
    }

    #[test]
    fn session_submit_with_retry_preserves_fifo() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = pipeline(4, 2);
        let mut session = Session::with_max_inflight(&p, 2);
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(9);
        for b in 0..10u64 {
            session
                .submit_with_retry(
                    OpBatch::new(vec![Op::Insert(300_001 + 2 * b, b)]),
                    &policy,
                    &mut rng,
                )
                .expect("default policy over an uncontended pipeline");
            assert!(session.inflight.len() <= 2, "window still respected");
        }
        let all = session.drain();
        assert_eq!(all.len(), 10);
        for (b, responses) in all.iter().enumerate() {
            assert_eq!(responses, &vec![Response::Insert(true)], "batch {b}");
        }
    }

    #[test]
    fn try_submit_backpressure_is_all_or_nothing() {
        // One worker, one shard, tiny queue: saturate it and verify accepted
        // batches all execute while rejected ones come back intact.
        let mut idx = ShardedIndex::from_factory(Partitioner::range(1), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        idx.bulk_load(&[(0, 0)]);
        let p = ShardPipeline::with_queue_capacity(Arc::new(idx), 1, 2);
        assert_eq!(p.queue_capacity(), 2);

        let mut accepted: Vec<SubmitHandle> = Vec::new();
        let mut rejected = 0usize;
        let mut accepted_keys: Vec<u64> = Vec::new();
        for i in 0..2_000u64 {
            let key = 10 + i;
            match p.try_submit(OpBatch::new(vec![Op::Insert(key, i)])) {
                Ok(handle) => {
                    accepted_keys.push(key);
                    accepted.push(handle);
                }
                Err(bp) => {
                    // The rejected batch comes back intact for retry.
                    assert_eq!(bp.batch.ops, vec![Op::Insert(key, i)]);
                    assert_eq!(bp.reason, BackpressureReason::QueueFull { shard: 0 });
                    rejected += 1;
                }
            }
        }
        // Every accepted op completed with a typed response…
        for handle in accepted {
            let responses = handle.wait();
            assert_eq!(responses, vec![Response::Insert(true)]);
        }
        // …and is visible in the store: accepted + bulk = final len.
        assert_eq!(p.index().len(), 1 + accepted_keys.len());
        for key in accepted_keys {
            assert!(p.index().get(key).is_some());
        }
        assert!(
            rejected > 0,
            "a 2-deep queue must reject under a 2k-op flood"
        );
    }

    #[test]
    fn drain_barrier_completes_after_all_queued_work() {
        let p = pipeline(4, 2);
        // Queue a pile of writes, then a barrier: once the barrier's handle
        // completes, every one of those writes must be visible.
        for i in 0..200u64 {
            p.submit(OpBatch::new(vec![Op::Insert(300_001 + 2 * i, i)]));
        }
        let responses = p.drain_barrier().wait();
        assert!(responses.is_empty(), "a barrier answers no ops");
        assert_eq!(p.index().len(), 4_000 + 200);
        // Barriers leave the depth gauges balanced: the pipeline still
        // accepts and serves work afterwards.
        let r = p.execute(OpBatch::new(vec![Op::Get(300_001)]));
        assert_eq!(r.hits, 1);
    }

    #[test]
    fn frozen_range_rejects_overlapping_batches_until_commit() {
        let p = pipeline(4, 2);
        p.index()
            .freeze_range(Some(4_000), None)
            .expect("freeze succeeds");
        // A batch inside the frozen window bounces with `Migrating`…
        match p.try_submit(OpBatch::new(vec![Op::Insert(5_000, 1)])) {
            Err(bp) => assert_eq!(bp.reason, BackpressureReason::Migrating),
            Ok(_) => panic!("overlapping batch must be rejected"),
        }
        // …a scan reaching into it too…
        match p.try_submit(OpBatch::new(vec![Op::Range(RangeSpec::new(3_000, 10_000))])) {
            Err(bp) => assert_eq!(bp.reason, BackpressureReason::Migrating),
            Ok(_) => panic!("overlapping scan must be rejected"),
        }
        // …while disjoint traffic flows untouched (serving never pauses
        // globally).
        let r = p.execute(OpBatch::new(vec![
            Op::Get(0),
            Op::Range(RangeSpec::bounded(0, 3_999, 10)),
        ]));
        assert_eq!(r.errors, 0);
        assert_eq!(r.hits, 1);
        // After the routing swap commits, the same batch goes through — and
        // a blocking submit parked during the freeze wakes up.
        let frozen_batch = OpBatch::new(vec![Op::Insert(5_001, 1)]);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| p.submit(frozen_batch).wait());
            std::thread::sleep(Duration::from_millis(20));
            assert!(!waiter.is_finished(), "submit must wait out the freeze");
            let current = Partitioner::clone(&p.index().partitioner());
            p.index().commit_routing(current).expect("commit succeeds");
            assert_eq!(waiter.join().unwrap(), vec![Response::Insert(true)]);
        });
        assert_eq!(p.index().get(5_001), Some(1));
    }
}
