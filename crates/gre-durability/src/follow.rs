//! Tailing the WAL as a live shipping stream: [`LogFollower`] re-uses the
//! record replay machinery ([`crate::record::decode_record`]) to turn each
//! shard's log file into an incremental iterator of committed groups, while
//! a [`crate::wal::DurableLog`] keeps appending to it.
//!
//! This is the transport of the replication tier (`gre-replica`): the
//! primary's WAL doubles as the replication log, so replicas apply exactly
//! the bytes that recovery would replay — one code path, one format, one
//! torn-tail discipline.
//!
//! ## Safety of concurrent tailing
//!
//! A WAL file only ever **grows** while it is being followed (group commits
//! append whole framed records; checkpoints, which truncate, require a
//! quiesced shard and must not run under a live follower — see
//! [`LogFollower::poll`]). The bytes a reader observes are therefore always
//! a prefix of a valid record sequence: the only mid-flight artifact is a
//! torn tail, exactly the crash signature [`decode_record`] already
//! classifies. [`LogFollower::poll`] stops at the first
//! [`RecordError::TornTail`] and re-reads from the same offset next time;
//! any *other* decode error is a real corruption and surfaces as an
//! [`io::Error`].
//!
//! ## Resuming
//!
//! [`LogFollower::resume`] positions a follower at the start of each log
//! but arms a per-shard *applied watermark*: records whose `seq` is at or
//! below the watermark are consumed (the cursor advances past them) but not
//! yielded. A replica that crashed after applying sequence `W` re-joins by
//! resuming at `W`, replaying the log from the top, and receiving exactly
//! the suffix `W+1..` — no lost and no duplicated applies, the same
//! idempotence argument snapshots use during recovery.

use crate::record::{decode_record, Record, RecordError};
use crate::wal::{read_manifest, wal_path};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Per-shard tail position.
#[derive(Debug, Clone)]
struct Cursor {
    /// Byte offset of the first record not yet consumed.
    offset: u64,
    /// The sequence number [`LogFollower::poll`] will yield next. Records
    /// below this are skipped (already applied); a record *above* it is a
    /// sequence break and surfaces as an error.
    next_seq: u64,
}

/// An incremental reader of a [`crate::wal::DurableLog`] directory: one
/// cursor per shard, each [`poll`](LogFollower::poll) returning the framed
/// groups committed since the last call.
#[derive(Debug)]
pub struct LogFollower {
    dir: PathBuf,
    cursors: Vec<Cursor>,
    buf: Vec<u8>,
}

impl LogFollower {
    /// Follow the log under `dir` from the beginning of every shard's file,
    /// expecting the first record to carry sequence 1 (a freshly created or
    /// freshly checkpointed log). Shard count comes from the WAL manifest.
    pub fn from_start(dir: &Path) -> io::Result<LogFollower> {
        let shards = read_manifest(dir)?;
        Ok(LogFollower {
            dir: dir.to_path_buf(),
            cursors: vec![
                Cursor {
                    offset: 0,
                    next_seq: 1,
                };
                shards
            ],
            buf: Vec::new(),
        })
    }

    /// Re-join after a crash: replay every shard's log from the top but
    /// yield only records *after* `applied[shard]` (the re-joiner's last
    /// applied watermark). `applied.len()` must match the manifest's shard
    /// count.
    pub fn resume(dir: &Path, applied: &[u64]) -> io::Result<LogFollower> {
        let shards = read_manifest(dir)?;
        if applied.len() != shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "watermark covers {} shards but the log has {shards}",
                    applied.len()
                ),
            ));
        }
        Ok(LogFollower {
            dir: dir.to_path_buf(),
            cursors: applied
                .iter()
                .map(|&w| Cursor {
                    offset: 0,
                    next_seq: w + 1,
                })
                .collect(),
            buf: Vec::new(),
        })
    }

    /// Number of shard logs being followed.
    pub fn shards(&self) -> usize {
        self.cursors.len()
    }

    /// The sequence number the next yielded record on `shard` will carry.
    pub fn next_seq(&self, shard: usize) -> u64 {
        self.cursors[shard].next_seq
    }

    /// Byte offset of `shard`'s cursor (bytes fully consumed so far).
    pub fn offset(&self, shard: usize) -> u64 {
        self.cursors[shard].offset
    }

    /// Read every complete record appended to `shard`'s log since the last
    /// poll. Returns an empty vec when nothing new is committed (including
    /// when the file ends in a torn tail still being appended). Skipped
    /// (already-applied) records advance the cursor without being yielded.
    ///
    /// Errors: a shrunken file (a checkpoint truncated the log under the
    /// follower — unsupported while shipping), a non-torn decode failure
    /// (corruption), or a sequence break (a gap the resume watermark cannot
    /// explain).
    pub fn poll(&mut self, shard: usize) -> io::Result<Vec<Record>> {
        let path = wal_path(&self.dir, shard);
        let mut file = std::fs::File::open(&path)?;
        let len = file.metadata()?.len();
        let cur = &mut self.cursors[shard];
        if len < cur.offset {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "wal for shard {shard} shrank under the follower \
                     ({len} < {}): checkpoint while shipping is unsupported",
                    cur.offset
                ),
            ));
        }
        if len == cur.offset {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(cur.offset))?;
        self.buf.clear();
        file.take(len - cur.offset).read_to_end(&mut self.buf)?;

        let mut out = Vec::new();
        let mut at = 0usize;
        while at < self.buf.len() {
            match decode_record(&self.buf, at) {
                Ok(rec) => {
                    at += rec.frame_len;
                    cur.offset += rec.frame_len as u64;
                    if rec.seq < cur.next_seq {
                        continue; // already applied by the resuming replica
                    }
                    if rec.seq > cur.next_seq {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "sequence break on shard {shard}: \
                                 expected {}, found {}",
                                cur.next_seq, rec.seq
                            ),
                        ));
                    }
                    cur.next_seq = rec.seq + 1;
                    out.push(rec);
                }
                // A torn tail is an append still in flight: stop here and
                // re-read from the same offset next poll.
                Err(RecordError::TornTail { .. }) => break,
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "corrupt record on shard {shard} at offset {}: {e:?}",
                            cur.offset
                        ),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Poll every shard once, returning `(shard, record)` pairs in shard
    /// order. Convenience for single-threaded shippers.
    pub fn poll_all(&mut self) -> io::Result<Vec<(usize, Record)>> {
        let mut out = Vec::new();
        for shard in 0..self.shards() {
            for rec in self.poll(shard)? {
                out.push((shard, rec));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::TempDir;
    use crate::wal::{DurableLog, SyncPolicy};
    use gre_core::Request;

    fn inserts(base: u64, n: u64) -> Vec<Request<u64>> {
        (0..n)
            .map(|i| Request::Insert(base + i, base + i))
            .collect()
    }

    #[test]
    fn tails_groups_as_they_commit() {
        let dir = TempDir::new("follow-tail");
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        let mut follower = LogFollower::from_start(dir.path()).unwrap();
        assert_eq!(follower.shards(), 2);
        assert!(follower.poll(0).unwrap().is_empty());

        log.log_group(0, &inserts(10, 3)).unwrap();
        log.log_group(0, &inserts(20, 2)).unwrap();
        log.log_group(1, &inserts(30, 1)).unwrap();

        let got = follower.poll(0).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[0].ops, inserts(10, 3));
        assert_eq!(got[1].seq, 2);
        assert_eq!(follower.poll(0).unwrap().len(), 0, "no re-delivery");

        let got = follower.poll(1).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ops, inserts(30, 1));

        // More commits after a drained poll are picked up incrementally.
        log.log_group(0, &inserts(40, 4)).unwrap();
        let got = follower.poll(0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 3);
        assert_eq!(follower.next_seq(0), 4);
    }

    #[test]
    fn torn_tail_is_not_an_error_and_completes_later() {
        let dir = TempDir::new("follow-torn");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &inserts(1, 2)).unwrap();

        // Simulate an append caught mid-write: a full record followed by a
        // prefix of the next one.
        let path = wal_path(dir.path(), 0);
        let full = std::fs::read(&path).unwrap();
        let mut next = Vec::new();
        crate::record::encode_record(2, &inserts(5, 2), &mut next);
        let mut torn = full.clone();
        torn.extend_from_slice(&next[..next.len() / 2]);
        std::fs::write(&path, &torn).unwrap();

        let mut follower = LogFollower::from_start(dir.path()).unwrap();
        let got = follower.poll(0).unwrap();
        assert_eq!(got.len(), 1, "complete record yielded");
        assert_eq!(
            follower.offset(0),
            full.len() as u64,
            "cursor stops at the tear"
        );

        // The append completes; the follower resumes cleanly.
        let mut whole = full;
        whole.extend_from_slice(&next);
        std::fs::write(&path, &whole).unwrap();
        let got = follower.poll(0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 2);
        assert_eq!(got[0].ops, inserts(5, 2));
    }

    #[test]
    fn resume_skips_already_applied_records_exactly() {
        let dir = TempDir::new("follow-resume");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        for g in 0..5u64 {
            log.log_group(0, &inserts(g * 10, 2)).unwrap();
        }

        // A replica that applied through seq 3 re-joins.
        let mut follower = LogFollower::resume(dir.path(), &[3]).unwrap();
        let got = follower.poll(0).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [4, 5], "exactly the unapplied suffix, no dupes");

        // Watermark at the very tip: nothing to re-apply.
        let mut follower = LogFollower::resume(dir.path(), &[5]).unwrap();
        assert!(follower.poll(0).unwrap().is_empty());
    }

    #[test]
    fn resume_requires_matching_shard_count() {
        let dir = TempDir::new("follow-shape");
        let _log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        assert!(LogFollower::resume(dir.path(), &[0]).is_err());
    }

    #[test]
    fn corruption_is_an_error_not_a_stall() {
        let dir = TempDir::new("follow-corrupt");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &inserts(1, 2)).unwrap();
        log.log_group(0, &inserts(9, 2)).unwrap();

        // Flip a byte inside the second record's body.
        let path = wal_path(dir.path(), 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut follower = LogFollower::from_start(dir.path()).unwrap();
        assert!(follower.poll(0).is_err());
    }
}
