//! Crash recovery: scan snapshots + WALs back into an exact index state.
//!
//! [`Recovery::recover`] reads a log directory (manifest, per-shard
//! snapshot, per-shard WAL) and classifies, per shard, exactly where and why
//! the valid history ends:
//!
//! * **clean end** — the log ends on a record boundary;
//! * **torn tail** — the last record is incomplete (crash mid-append); the
//!   torn bytes are dropped, everything before them is kept;
//! * **corrupt record** — checksum/length/payload failure (bit rot, or a
//!   duplicate/rewritten region); the scan stops at the last valid record;
//! * **sequence break** — a record decodes but its seq is not the successor
//!   of the previous one (e.g. a duplicate tail record left by a torn
//!   rewrite); the scan stops before it.
//!
//! Recovery never panics on any byte sequence and never reads past a file.
//!
//! Records whose seq is ≤ the shard snapshot's `last_seq` are *covered*: the
//! snapshot already folds in their effects (this happens when a crash lands
//! between a checkpoint's snapshot rename and its WAL truncate). They are
//! counted but not replayed.
//!
//! [`Recovery::replay_into`] rebuilds any [`ConcurrentIndex`] backend. Each
//! shard's model (a `BTreeMap`) is rebuilt independently — snapshot entries
//! first, then its surviving groups re-applied in seq order — so the
//! per-shard work runs on scoped threads, one per shard, and the merged
//! models are bulk-loaded in a single pass. Replay is deterministic: the
//! rebuilt state equals the state at the moment the last surviving group
//! originally executed.
//!
//! ## Topology records
//!
//! Range handoffs (shard split/merge/migrate, see `gre-elastic` and
//! `docs/ELASTICITY.md`) appear in the logs as paired records sharing a
//! handoff id: the moved entries as `In` on the **target** shard (synced
//! first), then the departed range as `Out` on the **source** (synced
//! second — the durable commit point). Recovery applies a handoff **iff it
//! completed**:
//!
//! * an `Out` with the same id survives anywhere, or
//! * the source shard's snapshot holds **no** keys in the moved range — the
//!   signature of an `Out` that a later source checkpoint folded in.
//!
//! Otherwise the `In` is discarded and the source's replay keeps the range:
//! a crash mid-migration recovers to the *pre*-handoff topology, a crash
//! after the `Out` sync to the *post*-handoff topology — never a mix, and
//! never a duplicated or lost key. Callers should checkpoint every shard
//! after a recovery that saw topology records ([`Recovery::has_topology`])
//! so stale handoffs cannot outlive a second crash.

use crate::record::{decode_record, Record, RecordError, TopologyDirection};
use crate::snapshot::{read_snapshot, snapshot_path, Snapshot};
use crate::wal::{read_manifest, DurableLog, SyncPolicy};
use gre_core::{ConcurrentIndex, Request};
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a shard's WAL scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The log ended exactly on a record boundary.
    CleanEnd,
    /// The final record was incomplete — the normal crash signature.
    TornTail {
        /// Torn bytes dropped from the tail.
        dropped: u64,
    },
    /// A record failed validation; the scan stopped at the last valid one.
    Corrupt(RecordError),
    /// A record decoded but broke seq continuity (duplicate or gap).
    SeqBreak { expected: u64, found: u64 },
}

/// One shard's recovered history.
#[derive(Debug)]
pub struct ShardRecovery {
    pub shard: usize,
    /// Validated snapshot, if one exists.
    pub snapshot: Option<Snapshot>,
    /// Surviving WAL groups **not** covered by the snapshot, in seq order.
    pub groups: Vec<Record>,
    /// WAL records skipped because the snapshot already covers their seq.
    pub covered_groups: u64,
    /// Byte length of the valid WAL prefix (where a resume may append).
    pub valid_len: u64,
    /// Total bytes found in the WAL file.
    pub wal_len: u64,
    pub stop: StopReason,
}

impl ShardRecovery {
    /// Seq of the last group whose effects the recovered state includes
    /// (0 = empty history).
    pub fn last_seq(&self) -> u64 {
        self.groups
            .last()
            .map(|r| r.seq)
            .or(self.snapshot.as_ref().map(|s| s.last_seq))
            .unwrap_or(0)
    }

    /// Operations this shard will replay.
    pub fn op_count(&self) -> u64 {
        self.groups.iter().map(|r| r.ops.len() as u64).sum()
    }
}

/// The full recovered image of a log directory.
#[derive(Debug)]
pub struct Recovery {
    dir: PathBuf,
    pub shards: Vec<ShardRecovery>,
}

/// The squashed final effect of one shard's surviving groups on one key.
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// The key's final written value (insert, applied update, or a
    /// completed-handoff arrival).
    Put(u64),
    /// The key was removed (tombstone — recorded even when the key is
    /// absent locally, so the merge can kill a copy held by another
    /// shard's snapshot).
    Del,
    /// An update whose target's presence can only be decided against the
    /// globally merged state (the key was in neither this shard's
    /// snapshot nor its earlier writes).
    PutIfPresent(u64),
}

/// One shard's replay contribution: its snapshot base and the squashed
/// effects of its surviving groups, kept separate so the merge can layer
/// all bases under all writes.
struct ShardReplayState {
    base: BTreeMap<u64, u64>,
    writes: BTreeMap<u64, Effect>,
    replayed: u64,
}

fn scan_shard(dir: &Path, shard: usize) -> io::Result<ShardRecovery> {
    let snapshot = read_snapshot(&snapshot_path(dir, shard));
    let snap_seq = snapshot.as_ref().map(|s| s.last_seq);
    let wal = match std::fs::read(dir.join(format!("shard-{shard}.wal"))) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut groups = Vec::new();
    let mut covered_groups = 0u64;
    let mut at = 0usize;
    // The first record's seq is accepted as-is (checkpoints truncate the log
    // without resetting seqs); every later record must be its predecessor's
    // successor.
    let mut expected: Option<u64> = None;
    let stop = loop {
        if at == wal.len() {
            break StopReason::CleanEnd;
        }
        match decode_record(&wal, at) {
            Ok(rec) => {
                if let Some(exp) = expected {
                    if rec.seq != exp {
                        break StopReason::SeqBreak {
                            expected: exp,
                            found: rec.seq,
                        };
                    }
                }
                expected = Some(rec.seq + 1);
                at += rec.frame_len;
                if snap_seq.is_some_and(|s| rec.seq <= s) {
                    covered_groups += 1;
                } else {
                    groups.push(rec);
                }
            }
            Err(RecordError::TornTail { remaining }) => {
                break StopReason::TornTail {
                    dropped: remaining as u64,
                }
            }
            Err(e) => break StopReason::Corrupt(e),
        }
    };
    Ok(ShardRecovery {
        shard,
        snapshot,
        groups,
        covered_groups,
        valid_len: at as u64,
        wal_len: wal.len() as u64,
        stop,
    })
}

impl Recovery {
    /// Scan the log directory at `dir` (as laid out by
    /// [`DurableLog::create`]) into a recovery image.
    pub fn recover(dir: &Path) -> io::Result<Recovery> {
        let shards = read_manifest(dir)?;
        let mut recovered = Vec::with_capacity(shards);
        for shard in 0..shards {
            recovered.push(scan_shard(dir, shard)?);
        }
        Ok(Recovery {
            dir: dir.to_path_buf(),
            shards: recovered,
        })
    }

    /// Total operations replay will apply (snapshot entries not included).
    pub fn replayed_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.op_count()).sum()
    }

    /// Whether every shard's WAL ended cleanly on a record boundary.
    pub fn is_clean(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.stop, StopReason::CleanEnd))
    }

    /// Whether any surviving record is a topology (range-handoff) record.
    /// After replaying such a history the caller should checkpoint every
    /// shard, so a stale handoff cannot survive into a second recovery.
    pub fn has_topology(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.groups.iter().any(|r| r.topology.is_some()))
    }

    /// Handoff ids whose migration completed (see the module docs): an
    /// `Out` record survives, or the source's snapshot already reflects the
    /// departed range.
    fn completed_handoffs(&self) -> HashSet<u64> {
        let mut complete: HashSet<u64> = HashSet::new();
        for shard in &self.shards {
            for rec in &shard.groups {
                if let Some(t) = &rec.topology {
                    if t.dir == TopologyDirection::Out {
                        complete.insert(t.id);
                    }
                }
            }
        }
        for shard in &self.shards {
            for rec in &shard.groups {
                let Some(t) = &rec.topology else { continue };
                if t.dir != TopologyDirection::In || complete.contains(&t.id) {
                    continue;
                }
                let source_clean = self
                    .shards
                    .get(t.peer as usize)
                    .and_then(|s| s.snapshot.as_ref())
                    .is_some_and(|snap| {
                        !snap
                            .entries
                            .iter()
                            .any(|&(k, _)| k >= t.lo && t.hi.map_or(true, |h| k < h))
                    });
                if source_clean {
                    complete.insert(t.id);
                }
            }
        }
        complete
    }

    /// Rebuild one shard's contribution: its snapshot base plus its
    /// surviving groups squashed (in seq order) into per-key effects. Pure
    /// per-shard work, safe to run concurrently across shards. Keeping the
    /// base and the effects separate — instead of folding them into one
    /// model — lets the merge phase layer *every* shard's base under
    /// *every* shard's writes, reproducing the semantics of a sequential
    /// global replay even when routing drifted between incarnations (a key
    /// checkpointed under one shard, rewritten under another).
    fn shard_state(
        shard: &ShardRecovery,
        complete: &HashSet<u64>,
        supports_delete: bool,
    ) -> ShardReplayState {
        let mut base: BTreeMap<u64, u64> = shard
            .snapshot
            .iter()
            .flat_map(|s| s.entries.iter().copied())
            .collect();
        let mut writes: BTreeMap<u64, Effect> = BTreeMap::new();
        let mut replayed = 0u64;
        for rec in &shard.groups {
            if let Some(t) = &rec.topology {
                match t.dir {
                    TopologyDirection::In => {
                        if complete.contains(&t.id) {
                            for &(k, v) in &t.entries {
                                writes.insert(k, Effect::Put(v));
                            }
                        }
                    }
                    TopologyDirection::Out => {
                        // The range departed this shard: kill its local
                        // copies — the snapshot's and any pre-handoff
                        // writes (the target's `In` carries their final
                        // values). Seq order makes chained handoffs come
                        // out right.
                        let in_range = |k: u64| k >= t.lo && t.hi.map_or(true, |h| k < h);
                        base.retain(|&k, _| !in_range(k));
                        writes.retain(|&k, _| !in_range(k));
                    }
                }
                continue;
            }
            for &op in &rec.ops {
                // Mirrors `Request::execute` against a live backend: insert
                // overwrites, update is present-only, remove is gated on
                // the backend's delete support, reads mutate nothing.
                match op {
                    Request::Insert(k, v) => {
                        writes.insert(k, Effect::Put(v));
                    }
                    Request::Update(k, v) => {
                        let effect = match writes.get(&k) {
                            Some(Effect::Put(_)) => Some(Effect::Put(v)),
                            Some(Effect::PutIfPresent(_)) => Some(Effect::PutIfPresent(v)),
                            // Locally removed: definitively absent.
                            Some(Effect::Del) => None,
                            // Unknown locally: presence is decided at merge
                            // time against the globally layered state.
                            None if base.contains_key(&k) => Some(Effect::Put(v)),
                            None => Some(Effect::PutIfPresent(v)),
                        };
                        if let Some(e) = effect {
                            writes.insert(k, e);
                        }
                    }
                    Request::Remove(k) => {
                        if supports_delete {
                            writes.insert(k, Effect::Del);
                        }
                    }
                    Request::Get(_) | Request::Range(_) => {}
                }
                replayed += 1;
            }
        }
        ShardReplayState {
            base,
            writes,
            replayed,
        }
    }

    /// Rebuild every shard's state and merge: all snapshot bases first
    /// (shard order), then every shard's squashed writes on top (shard
    /// order) — so a write always supersedes a snapshot copy, whichever
    /// shards they came from. `parallel` fans the per-shard pass out on
    /// scoped threads; both modes produce identical bytes.
    fn rebuild_entries(&self, supports_delete: bool, parallel: bool) -> (Vec<(u64, u64)>, u64) {
        let complete = self.completed_handoffs();
        let states: Vec<ShardReplayState> = if parallel && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| {
                        let complete = &complete;
                        scope.spawn(move || Self::shard_state(shard, complete, supports_delete))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard replay panicked"))
                    .collect()
            })
        } else {
            self.shards
                .iter()
                .map(|shard| Self::shard_state(shard, &complete, supports_delete))
                .collect()
        };
        let mut replayed = 0u64;
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for state in &states {
            merged.extend(state.base.iter().map(|(&k, &v)| (k, v)));
        }
        for state in states {
            replayed += state.replayed;
            for (k, effect) in state.writes {
                match effect {
                    Effect::Put(v) => {
                        merged.insert(k, v);
                    }
                    Effect::Del => {
                        merged.remove(&k);
                    }
                    Effect::PutIfPresent(v) => {
                        if let Some(slot) = merged.get_mut(&k) {
                            *slot = v;
                        }
                    }
                }
            }
        }
        (merged.into_iter().collect(), replayed)
    }

    /// Rebuild `index` (which must be empty) to the recovered state: each
    /// shard's model is rebuilt concurrently (snapshot base, then its
    /// surviving groups in seq order, honoring topology handoffs — see the
    /// module docs), and the merged result is bulk-loaded in one pass.
    /// Returns the number of replayed operations.
    pub fn replay_into<I: ConcurrentIndex<u64> + ?Sized>(&self, index: &mut I) -> u64 {
        let supports_delete = index.meta().supports_delete;
        let (entries, replayed) = self.rebuild_entries(supports_delete, true);
        if !entries.is_empty() {
            index.bulk_load(&entries);
        }
        replayed
    }

    /// Physically truncate each shard's WAL to its valid prefix, removing
    /// torn or corrupt tails so a resumed writer appends on a clean
    /// boundary.
    pub fn truncate_torn_tails(&self) -> io::Result<()> {
        for shard in &self.shards {
            if shard.valid_len < shard.wal_len {
                let path = self.dir.join(format!("shard-{}.wal", shard.shard));
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(shard.valid_len)?;
                file.sync_data()?;
            }
        }
        Ok(())
    }

    /// Truncate torn tails and re-open the directory for writing, with each
    /// shard's sequence numbering continuing after its recovered history.
    pub fn resume(&self, policy: SyncPolicy) -> io::Result<Arc<DurableLog>> {
        self.truncate_torn_tails()?;
        let next_seqs: Vec<u64> = self.shards.iter().map(|s| s.last_seq() + 1).collect();
        DurableLog::build(&self.dir, self.shards.len(), policy, None, Some(&next_seqs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{FailAction, FailpointRegistry, Trigger};
    use crate::util::TempDir;
    use gre_core::index::MutexIndex;
    use gre_core::{Index, IndexMeta, Payload, RangeSpec, Request, StatsSnapshot};
    use std::collections::BTreeMap;

    /// A minimal reference backend for replay tests.
    #[derive(Default)]
    struct MapIndex(BTreeMap<u64, u64>);

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            for &(k, v) in entries {
                self.0.insert(k, v);
            }
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.0.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.0.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.0.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            out.extend(
                self.0
                    .range(spec.start..)
                    .take(spec.count)
                    .map(|(&k, &v)| (k, v)),
            );
            out.len()
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn memory_usage(&self) -> usize {
            0
        }
        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot::default()
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn map_backend() -> MutexIndex<MapIndex> {
        MutexIndex::new(MapIndex::default(), "map")
    }

    fn entries_of(index: &MutexIndex<MapIndex>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        index.range(RangeSpec::new(0, usize::MAX), &mut out);
        out
    }

    fn write_history(dir: &Path) -> Vec<(u64, u64)> {
        // Shard 0: insert/overwrite/remove churn. Shard 1: checkpointed base
        // plus post-checkpoint records.
        let log = DurableLog::create(dir, 2, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &[Request::Insert(1, 10), Request::Insert(3, 30)])
            .unwrap();
        log.log_group(0, &[Request::Update(3, 31), Request::Remove(1)])
            .unwrap();
        log.log_group(1, &[Request::Insert(100, 1000), Request::Insert(101, 1010)])
            .unwrap();
        log.checkpoint(1, &[(100, 1000), (101, 1010)]).unwrap();
        log.log_group(1, &[Request::Remove(101), Request::Insert(102, 1020)])
            .unwrap();
        vec![(3, 31), (100, 1000), (102, 1020)]
    }

    #[test]
    fn clean_recovery_rebuilds_exact_state() {
        let dir = TempDir::new("rec-clean");
        let expect = write_history(dir.path());
        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.shards[1].snapshot.as_ref().unwrap().last_seq, 1);
        let mut index = map_backend();
        let replayed = rec.replay_into(&mut index);
        assert_eq!(replayed, rec.replayed_ops());
        assert_eq!(entries_of(&index), expect);
    }

    #[test]
    fn torn_tail_is_dropped_and_prefix_replays() {
        let dir = TempDir::new("rec-torn");
        write_history(dir.path());
        // Tear the last record of shard 0's WAL mid-frame.
        let path = dir.path().join("shard-0.wal");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let rec = Recovery::recover(dir.path()).unwrap();
        let shard0 = &rec.shards[0];
        assert!(matches!(shard0.stop, StopReason::TornTail { dropped } if dropped > 0));
        assert_eq!(shard0.groups.len(), 1, "only the first group survives");
        let mut index = map_backend();
        rec.replay_into(&mut index);
        // State as of the surviving prefix: group 2 (update/remove) is gone.
        assert_eq!(
            entries_of(&index),
            vec![(1, 10), (3, 30), (100, 1000), (102, 1020)]
        );
        // Repair then resume: the tail is gone and seqs continue.
        let resumed = rec.resume(SyncPolicy::EveryGroup).unwrap();
        assert_eq!(resumed.next_seq(0), 2);
        assert_eq!(resumed.next_seq(1), 3);
        resumed.log_group(0, &[Request::Insert(5, 50)]).unwrap();
        let again = Recovery::recover(dir.path()).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.shards[0].groups.last().unwrap().seq, 2);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_covered_records() {
        let dir = TempDir::new("rec-covered");
        let registry = FailpointRegistry::new();
        // The checkpoint publishes its snapshot, then the WAL truncate
        // "crashes": both snapshot and full WAL remain on disk.
        registry.script("wal/0/truncate", Trigger::OnHit(1), FailAction::Crash);
        let log = DurableLog::create_injected(
            dir.path(),
            1,
            SyncPolicy::EveryGroup,
            Arc::clone(&registry),
        )
        .unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        log.log_group(0, &[Request::Insert(2, 20)]).unwrap();
        assert!(log.checkpoint(0, &[(1, 10), (2, 20)]).is_err());
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        let shard = &rec.shards[0];
        assert_eq!(shard.covered_groups, 2, "wal fully covered by snapshot");
        assert!(shard.groups.is_empty());
        assert_eq!(shard.last_seq(), 2);
        let mut index = map_backend();
        assert_eq!(rec.replay_into(&mut index), 0);
        assert_eq!(entries_of(&index), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_wal_replay() {
        let dir = TempDir::new("rec-badsnap");
        let registry = FailpointRegistry::new();
        registry.script("wal/0/truncate", Trigger::OnHit(1), FailAction::Crash);
        let log = DurableLog::create_injected(
            dir.path(),
            1,
            SyncPolicy::EveryGroup,
            Arc::clone(&registry),
        )
        .unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        assert!(log.checkpoint(0, &[(1, 10)]).is_err());
        drop(log);
        // Rot the snapshot; the un-truncated WAL carries the same history.
        let snap = snapshot_path(dir.path(), 0);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();

        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(
            rec.shards[0].snapshot.is_none(),
            "corrupt snapshot = absent"
        );
        assert_eq!(rec.shards[0].groups.len(), 1);
        let mut index = map_backend();
        assert_eq!(rec.replay_into(&mut index), 1);
        assert_eq!(entries_of(&index), vec![(1, 10)]);
    }

    #[test]
    fn seq_break_stops_the_scan() {
        let dir = TempDir::new("rec-seqbreak");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        log.log_group(0, &[Request::Insert(2, 20)]).unwrap();
        drop(log);
        // Duplicate the final record — the torn-rewrite signature.
        let path = dir.path().join("shard-0.wal");
        let bytes = std::fs::read(&path).unwrap();
        let first = decode_record(&bytes, 0).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[first.frame_len..]);
        std::fs::write(&path, &doubled).unwrap();

        let rec = Recovery::recover(dir.path()).unwrap();
        let shard = &rec.shards[0];
        assert_eq!(
            shard.stop,
            StopReason::SeqBreak {
                expected: 3,
                found: 2
            }
        );
        assert_eq!(shard.groups.len(), 2, "history before the break survives");
        assert_eq!(shard.valid_len, bytes.len() as u64);
    }

    #[test]
    fn missing_directory_is_an_error_not_a_panic() {
        let dir = TempDir::new("rec-missing");
        assert!(Recovery::recover(&dir.path().join("never-created")).is_err());
    }

    use crate::record::{TopologyDirection, TopologyRecord};

    /// A migration of [200, 300) from shard 0 to shard 1, written the way
    /// the elasticity controller does: entries as `In` on the target, then
    /// (optionally) the `Out` commit point on the source.
    fn write_handoff(log: &DurableLog, with_out: bool) -> Vec<(u64, u64)> {
        log.log_group(0, &[Request::Insert(100, 1), Request::Insert(250, 2)])
            .unwrap();
        log.log_group(0, &[Request::Insert(299, 3)]).unwrap();
        log.log_group(1, &[Request::Insert(900, 9)]).unwrap();
        let moved = vec![(250, 2), (299, 3)];
        log.log_topology(
            1,
            &TopologyRecord {
                dir: TopologyDirection::In,
                id: 77,
                lo: 200,
                hi: Some(300),
                peer: 0,
                entries: moved.clone(),
            },
        )
        .unwrap();
        if with_out {
            log.log_topology(
                0,
                &TopologyRecord {
                    dir: TopologyDirection::Out,
                    id: 77,
                    lo: 200,
                    hi: Some(300),
                    peer: 1,
                    entries: Vec::new(),
                },
            )
            .unwrap();
        }
        moved
    }

    #[test]
    fn completed_handoff_recovers_to_the_post_migration_topology() {
        let dir = TempDir::new("rec-handoff-done");
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        write_handoff(&log, true);
        // Post-handoff traffic on both sides, proving seq order holds
        // around the topology records.
        log.log_group(1, &[Request::Update(250, 20), Request::Insert(901, 91)])
            .unwrap();
        log.log_group(0, &[Request::Insert(150, 15)]).unwrap();
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.has_topology());
        let mut index = map_backend();
        rec.replay_into(&mut index);
        assert_eq!(
            entries_of(&index),
            vec![
                (100, 1),
                (150, 15),
                (250, 20),
                (299, 3),
                (900, 9),
                (901, 91)
            ],
            "moved keys exist exactly once, with post-handoff updates applied"
        );
    }

    #[test]
    fn incomplete_handoff_recovers_to_the_pre_migration_topology() {
        let dir = TempDir::new("rec-handoff-torn");
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        // Crash between the In sync and the Out sync: the In record is
        // durable but the commit point never landed.
        write_handoff(&log, false);
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.has_topology());
        let mut index = map_backend();
        rec.replay_into(&mut index);
        assert_eq!(
            entries_of(&index),
            vec![(100, 1), (250, 2), (299, 3), (900, 9)],
            "the In is discarded; the source's replay keeps the range — no mix"
        );
    }

    #[test]
    fn checkpoint_covered_out_still_completes_the_handoff() {
        let dir = TempDir::new("rec-handoff-covered");
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        write_handoff(&log, true);
        // The source checkpoints after the migration: its Out record is
        // folded into the snapshot and truncated away. The target's In
        // survives and must still apply (completion clause 2: the source
        // snapshot holds nothing in [200, 300)).
        log.checkpoint(0, &[(100, 1)]).unwrap();
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.shards[0].groups.is_empty(), "source wal truncated");
        let mut index = map_backend();
        rec.replay_into(&mut index);
        assert_eq!(
            entries_of(&index),
            vec![(100, 1), (250, 2), (299, 3), (900, 9)]
        );
    }

    #[test]
    fn parallel_and_sequential_replay_are_byte_identical() {
        let dir = TempDir::new("rec-parallel");
        let log = DurableLog::create(dir.path(), 4, SyncPolicy::EveryGroup).unwrap();
        // A busy, uneven history: churn on every shard, a checkpoint, a
        // handoff, and an unresolved handoff.
        for i in 0..200u64 {
            let shard = (i % 4) as usize;
            log.log_group(
                shard,
                &[
                    Request::Insert(i * 10, i),
                    Request::Update(i * 5, i),
                    Request::Remove(i * 7),
                ],
            )
            .unwrap();
        }
        log.checkpoint(2, &[(2, 2), (42, 42)]).unwrap();
        log.log_group(2, &[Request::Insert(1_000_002, 2)]).unwrap();
        write_handoff(&log, true);
        log.log_topology(
            3,
            &TopologyRecord {
                dir: TopologyDirection::In,
                id: 99,
                lo: 500,
                hi: None,
                peer: 0,
                entries: vec![(555, 5)],
            },
        )
        .unwrap(); // no Out: must be discarded identically in both modes
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        let (par, par_ops) = rec.rebuild_entries(true, true);
        let (seq, seq_ops) = rec.rebuild_entries(true, false);
        assert_eq!(par_ops, seq_ops);
        assert_eq!(par, seq, "scoped-thread replay must be deterministic");
        assert!(!par.is_empty());
        // And the public path agrees with the sequential rebuild.
        let mut index = map_backend();
        rec.replay_into(&mut index);
        assert_eq!(entries_of(&index), seq);
    }
}
