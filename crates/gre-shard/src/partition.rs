//! Key-space partitioners: the `key -> shard` maps of the serving layer.
//!
//! Two schemes, matching the two failure modes of partitioned serving:
//!
//! * [`RangePartitioner`] — contiguous key ranges with boundaries placed at
//!   the quantiles of a sampled key CDF, so an arbitrarily skewed key
//!   *distribution* still spreads evenly across shards. Keeps shards ordered
//!   by key, which lets cross-shard range scans visit shards sequentially.
//! * [`HashPartitioner`] — a mixed hash of the key, for *access* skew
//!   resistance: a hot contiguous key region (e.g. append-mostly inserts at
//!   the domain tail) is spread over all shards instead of hammering one.
//!   Range scans lose shard locality and must fan out to every shard.

use gre_core::Key;

/// Cap on the number of CDF sample points used to fit range boundaries.
/// Quantile placement needs only a coarse CDF sketch; sampling keeps
/// boundary fitting O(SAMPLE_LIMIT log SAMPLE_LIMIT) even for huge loads.
pub const SAMPLE_LIMIT: usize = 4096;

/// Partitioning scheme selector: the configuration-surface counterpart of
/// [`Partitioner`] (which additionally carries fitted state). Used by typed
/// builders — e.g. `IndexBuilder::backend("alex+")?.partitioner(Scheme::Hash)`
/// in `gre-bench` — to pick a scheme before the shard count is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Contiguous key ranges, boundaries fitted to the loaded key CDF.
    #[default]
    Range,
    /// splitmix64 hash of the key: access-skew resistant, fan-out scans.
    Hash,
}

impl Scheme {
    /// Instantiate a partitioner of this scheme over `shards` shards.
    pub fn partitioner<K: Key>(self, shards: usize) -> Partitioner<K> {
        match self {
            Scheme::Range => Partitioner::range(shards),
            Scheme::Hash => Partitioner::hash(shards),
        }
    }

    /// Scheme name as used in display names and CLI specs.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Range => "range",
            Scheme::Hash => "hash",
        }
    }

    /// Parse a scheme name (the inverse of [`Scheme::name`]).
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.trim().to_ascii_lowercase().as_str() {
            "range" => Some(Scheme::Range),
            "hash" => Some(Scheme::Hash),
            _ => None,
        }
    }
}

/// A `key -> shard` map over a fixed number of shards.
#[derive(Debug, Clone)]
pub enum Partitioner<K: Key> {
    Range(RangePartitioner<K>),
    Hash(HashPartitioner),
}

impl<K: Key> Partitioner<K> {
    /// Range partitioner with no fitted boundaries yet: every key routes to
    /// shard 0 until [`Partitioner::refit`] (called by `ShardedIndex`'s bulk
    /// load) derives boundaries from actual keys.
    pub fn range(shards: usize) -> Self {
        Partitioner::Range(RangePartitioner::unfitted(shards))
    }

    /// Range partitioner with boundaries fitted to the CDF of `samples`.
    pub fn range_from_samples(samples: &[K], shards: usize) -> Self {
        Partitioner::Range(RangePartitioner::from_samples(samples, shards))
    }

    /// Hash partitioner over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        Partitioner::Hash(HashPartitioner::new(shards))
    }

    /// Number of shards this partitioner routes over.
    pub fn shards(&self) -> usize {
        match self {
            Partitioner::Range(p) => p.shards,
            Partitioner::Hash(p) => p.shards,
        }
    }

    /// The shard `key` routes to. Always `< self.shards()`.
    #[inline]
    pub fn shard_of(&self, key: K) -> usize {
        match self {
            Partitioner::Range(p) => p.shard_of(key),
            Partitioner::Hash(p) => p.shard_of(key),
        }
    }

    /// Whether shard order follows key order (true for range partitioning).
    /// Ordered partitioners support sequential cross-shard range scans;
    /// unordered ones require a full fan-out merge.
    pub fn is_ordered(&self) -> bool {
        matches!(self, Partitioner::Range(_))
    }

    /// Refit the partitioner to a fresh key sample. A no-op for hash
    /// partitioning; for range partitioning this re-derives the quantile
    /// boundaries. Must only be called while no keys are stored under the
    /// old boundaries (i.e. at bulk-load time).
    pub fn refit(&mut self, samples: &[K]) {
        if let Partitioner::Range(p) = self {
            *p = RangePartitioner::from_samples(samples, p.shards);
        }
    }

    /// Human-readable scheme name for reporting.
    pub fn scheme(&self) -> &'static str {
        match self {
            Partitioner::Range(_) => "range",
            Partitioner::Hash(_) => "hash",
        }
    }

    /// The range partitioner inside, when this is the range scheme. The
    /// segment APIs (split/reassign, segment walks) only exist there; hash
    /// partitioning has no boundary table to edit.
    pub fn as_range(&self) -> Option<&RangePartitioner<K>> {
        match self {
            Partitioner::Range(p) => Some(p),
            Partitioner::Hash(_) => None,
        }
    }

    /// Mutable access to the range partitioner inside, for topology edits
    /// on a cloned table before an atomic routing swap.
    pub fn as_range_mut(&mut self) -> Option<&mut RangePartitioner<K>> {
        match self {
            Partitioner::Range(p) => Some(p),
            Partitioner::Hash(_) => None,
        }
    }
}

/// Range partitioning over **segments**: the boundary table cuts the key
/// domain into `boundaries.len() + 1` contiguous segments, and a parallel
/// `targets` table maps each segment to the shard that serves it.
///
/// Freshly fitted partitioners use the identity assignment (segment `i` →
/// shard `i`), which keeps `shard_of` monotone in the key — the property the
/// bulk-load slicing in `ShardedIndex` relies on. Elastic topology changes
/// ([`RangePartitioner::split_at`], [`RangePartitioner::reassign`]) edit the
/// tables afterwards, so a shard may end up serving several disjoint
/// segments and monotonicity no longer holds; cross-shard range scans must
/// therefore walk *segments* (in key order), not shards.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    /// `boundaries[i]` is the smallest key of segment `i + 1`; strictly
    /// increasing. Starts at most `shards - 1` long (shorter when the
    /// sample had too few distinct keys) and grows/shrinks under splits
    /// and merges.
    boundaries: Vec<K>,
    /// `targets[i]` is the shard serving segment `i`;
    /// `targets.len() == boundaries.len() + 1`, every value `< shards`.
    targets: Vec<usize>,
    shards: usize,
}

impl<K: Key> RangePartitioner<K> {
    /// A partitioner with no boundaries: all keys route to shard 0.
    pub fn unfitted(shards: usize) -> Self {
        RangePartitioner {
            boundaries: Vec::new(),
            targets: vec![0],
            shards: shards.max(1),
        }
    }

    /// Fit boundaries at the quantiles of the sampled key CDF so each shard
    /// owns an (approximately) equal share of the observed keys. Segments
    /// are assigned to shards identically (segment `i` → shard `i`).
    pub fn from_samples(samples: &[K], shards: usize) -> Self {
        let shards = shards.max(1);
        // Stride-sample to the CDF sketch budget, then sort the sketch.
        let stride = samples.len().div_ceil(SAMPLE_LIMIT).max(1);
        let mut sketch: Vec<K> = samples.iter().step_by(stride).copied().collect();
        sketch.sort_unstable();

        let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
        if sketch.len() >= shards && shards > 1 {
            for s in 1..shards {
                boundaries.push(sketch[s * sketch.len() / shards]);
            }
            boundaries.dedup();
        }
        let targets = (0..=boundaries.len()).collect();
        RangePartitioner {
            boundaries,
            targets,
            shards,
        }
    }

    /// Fitted boundary keys (for diagnostics and tests).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }

    /// Per-segment shard assignment (for diagnostics and tests).
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Number of contiguous key segments.
    pub fn segments(&self) -> usize {
        self.targets.len()
    }

    /// The segment `key` falls into.
    #[inline]
    pub fn segment_of(&self, key: K) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }

    /// The shard serving segment `seg`.
    #[inline]
    pub fn segment_target(&self, seg: usize) -> usize {
        self.targets[seg]
    }

    /// Key window of segment `seg` as `(lo, hi)`: `lo` inclusive (`None` =
    /// domain minimum), `hi` exclusive (`None` = domain maximum).
    pub fn segment_range(&self, seg: usize) -> (Option<K>, Option<K>) {
        let lo = seg.checked_sub(1).map(|i| self.boundaries[i]);
        let hi = self.boundaries.get(seg).copied();
        (lo, hi)
    }

    /// Segments currently served by `shard`, in key order.
    pub fn segments_of_shard(&self, shard: usize) -> Vec<usize> {
        (0..self.segments())
            .filter(|&s| self.targets[s] == shard)
            .collect()
    }

    /// Split segment `seg` at `mid`: the lower half `[lo, mid)` keeps the
    /// current target, the upper half `[mid, hi)` moves to shard `to`.
    /// `mid` must fall strictly inside the segment and `to` must be a valid
    /// shard; on violation the partitioner is left unchanged.
    pub fn split_at(&mut self, seg: usize, mid: K, to: usize) -> Result<(), &'static str> {
        if seg >= self.segments() {
            return Err("segment id out of range");
        }
        if to >= self.shards {
            return Err("target shard out of range");
        }
        let (lo, hi) = self.segment_range(seg);
        if lo.is_some_and(|l| mid <= l) || hi.is_some_and(|h| mid >= h) {
            return Err("split key not strictly inside the segment");
        }
        self.boundaries.insert(seg, mid);
        self.targets.insert(seg + 1, to);
        self.coalesce();
        Ok(())
    }

    /// Reassign segment `seg` to shard `to`, then drop any boundary whose
    /// two sides now share a target (the merge primitive: pointing a cold
    /// segment at its neighbour's shard coalesces the pair).
    pub fn reassign(&mut self, seg: usize, to: usize) -> Result<(), &'static str> {
        if seg >= self.segments() {
            return Err("segment id out of range");
        }
        if to >= self.shards {
            return Err("target shard out of range");
        }
        self.targets[seg] = to;
        self.coalesce();
        Ok(())
    }

    /// Remove boundaries between adjacent segments with the same target.
    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.targets.len() {
            if self.targets[i] == self.targets[i + 1] {
                self.targets.remove(i + 1);
                self.boundaries.remove(i);
            } else {
                i += 1;
            }
        }
    }

    #[inline]
    pub fn shard_of(&self, key: K) -> usize {
        self.targets[self.segment_of(key)]
    }
}

/// Hash partitioning via a 64-bit finalizer (splitmix64) over the key's
/// radix bytes: adjacent keys land on unrelated shards.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    pub fn new(shards: usize) -> Self {
        HashPartitioner {
            shards: shards.max(1),
        }
    }

    #[inline]
    pub fn shard_of<K: Key>(&self, key: K) -> usize {
        let x = u64::from_be_bytes(key.to_radix_bytes());
        (splitmix64(x) % self.shards as u64) as usize
    }
}

/// The splitmix64 finalizer: full-avalanche mixing of a 64-bit word.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfitted_range_routes_everything_to_shard_zero() {
        let p = Partitioner::<u64>::range(8);
        assert_eq!(p.shards(), 8);
        assert!(p.is_ordered());
        assert_eq!(p.scheme(), "range");
        for k in [0u64, 1, 1 << 40, u64::MAX] {
            assert_eq!(p.shard_of(k), 0);
        }
    }

    #[test]
    fn range_boundaries_track_the_sampled_cdf() {
        // Uniform keys: quantile boundaries split the domain evenly.
        let keys: Vec<u64> = (0..10_000u64).collect();
        let p = RangePartitioner::from_samples(&keys, 4);
        assert_eq!(p.boundaries().len(), 3);
        let mut counts = [0usize; 4];
        for &k in &keys {
            counts[p.shard_of(k)] += 1;
        }
        for c in counts {
            assert!(
                (2_000..=3_000).contains(&c),
                "uniform keys should spread evenly, got {counts:?}"
            );
        }
    }

    #[test]
    fn range_boundaries_adapt_to_skew() {
        // 90% of keys in a narrow band: quantiles put most boundaries there.
        let mut keys: Vec<u64> = (0..9_000u64).map(|i| 1_000_000 + i).collect();
        keys.extend((0..1_000u64).map(|i| i * 1_000_000_000));
        let p = RangePartitioner::from_samples(&keys, 8);
        let mut counts = vec![0usize; 8];
        for &k in &keys {
            counts[p.shard_of(k)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= keys.len() / 4,
            "no shard should own more than ~2x its fair share: {counts:?}"
        );
    }

    #[test]
    fn range_shard_of_is_monotone_in_the_key() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 31).collect();
        let p = RangePartitioner::from_samples(&keys, 7);
        let mut prev = 0usize;
        for &k in &keys {
            let s = p.shard_of(k);
            assert!(s >= prev, "range partitioning must preserve key order");
            assert!(s < 7);
            prev = s;
        }
    }

    #[test]
    fn degenerate_samples_leave_trailing_shards_empty() {
        // All-equal keys: boundaries collapse to at most one after dedup,
        // and every key still routes to a single valid shard.
        let keys = vec![42u64; 100];
        let p = RangePartitioner::from_samples(&keys, 4);
        assert!(p.boundaries().len() <= 1);
        assert!(p.shard_of(42) < 4);
        // Fewer samples than shards: also degenerate, still routable.
        let p = RangePartitioner::from_samples(&[1u64, 2], 8);
        for k in 0..10u64 {
            assert!(p.shard_of(k) < 8);
        }
    }

    #[test]
    fn hash_spreads_contiguous_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for k in 0..8_000u64 {
            counts[p.shard_of(k)] += 1;
        }
        for c in counts {
            assert!(
                (800..=1_200).contains(&c),
                "hash partitioning should spread a contiguous run: {counts:?}"
            );
        }
        assert!(!Partitioner::<u64>::hash(8).is_ordered());
        assert_eq!(Partitioner::<u64>::hash(8).scheme(), "hash");
    }

    #[test]
    fn refit_changes_range_but_not_hash() {
        let keys: Vec<u64> = (0..1_000u64).collect();
        let mut p = Partitioner::range(4);
        assert_eq!(p.shard_of(900), 0);
        p.refit(&keys);
        assert_eq!(p.shard_of(900), 3);
        let mut h = Partitioner::hash(4);
        let before = h.shard_of(900u64);
        h.refit(&keys);
        assert_eq!(h.shard_of(900u64), before);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(Partitioner::<u64>::range(0).shards(), 1);
        assert_eq!(Partitioner::<u64>::hash(0).shards(), 1);
    }

    #[test]
    fn fitted_partitioner_starts_with_identity_targets() {
        let keys: Vec<u64> = (0..10_000u64).collect();
        let p = RangePartitioner::from_samples(&keys, 4);
        assert_eq!(p.segments(), 4);
        assert_eq!(p.targets(), &[0, 1, 2, 3]);
        for seg in 0..p.segments() {
            assert_eq!(p.segment_target(seg), seg);
            let (lo, hi) = p.segment_range(seg);
            assert_eq!(lo.is_none(), seg == 0);
            assert_eq!(hi.is_none(), seg == p.segments() - 1);
            if let (Some(l), Some(h)) = (lo, hi) {
                assert!(l < h);
            }
        }
        assert_eq!(p.segments_of_shard(2), vec![2]);
    }

    #[test]
    fn split_moves_the_upper_half_to_the_target_shard() {
        let keys: Vec<u64> = (0..8_000u64).collect();
        let mut p = RangePartitioner::from_samples(&keys, 4);
        let (lo, hi) = p.segment_range(1);
        let (lo, hi) = (lo.unwrap(), hi.unwrap());
        let mid = (lo + hi) / 2;
        p.split_at(1, mid, 3).expect("legal split");
        assert_eq!(p.segments(), 5);
        // Lower half keeps shard 1, upper half now routes to shard 3.
        assert_eq!(p.shard_of(lo), 1);
        assert_eq!(p.shard_of(mid - 1), 1);
        assert_eq!(p.shard_of(mid), 3);
        assert_eq!(p.shard_of(hi - 1), 3);
        assert_eq!(p.shard_of(hi), 2);
        assert_eq!(p.segments_of_shard(3), vec![2, 4]);

        // Illegal splits leave the table unchanged.
        assert!(p.split_at(99, mid, 0).is_err());
        assert!(p.split_at(1, lo, 0).is_err(), "mid == segment lo");
        assert!(p.split_at(0, mid, 99).is_err(), "bad target shard");
        assert_eq!(p.segments(), 5);
    }

    #[test]
    fn reassign_coalesces_equal_target_neighbours() {
        let keys: Vec<u64> = (0..8_000u64).collect();
        let mut p = RangePartitioner::from_samples(&keys, 4);
        let (_, hi1) = p.segment_range(1);
        // Fold segment 1 into shard 2: boundary between 1 and 2 disappears.
        p.reassign(1, 2).expect("legal reassign");
        assert_eq!(p.segments(), 3);
        assert_eq!(p.targets(), &[0, 2, 3]);
        assert_eq!(p.shard_of(hi1.unwrap() - 1), 2);
        assert!(p.reassign(99, 0).is_err());
        assert!(p.reassign(0, 99).is_err());
    }

    #[test]
    fn split_then_merge_round_trips_routing() {
        let keys: Vec<u64> = (0..8_000u64).collect();
        let mut p = RangePartitioner::from_samples(&keys, 4);
        let before: Vec<usize> = keys.iter().map(|&k| p.shard_of(k)).collect();
        let (lo, hi) = p.segment_range(2);
        let mid = (lo.unwrap() + hi.unwrap()) / 2;
        p.split_at(2, mid, 0).unwrap();
        // Undo: point the new segment back at shard 2; coalescing removes
        // the split boundary again.
        let seg = p.segment_of(mid);
        p.reassign(seg, 2).unwrap();
        let after: Vec<usize> = keys.iter().map(|&k| p.shard_of(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn scheme_round_trips_names_and_builds_partitioners() {
        assert_eq!(Scheme::default(), Scheme::Range);
        for scheme in [Scheme::Range, Scheme::Hash] {
            assert_eq!(Scheme::parse(scheme.name()), Some(scheme));
            let p: Partitioner<u64> = scheme.partitioner(4);
            assert_eq!(p.shards(), 4);
            assert_eq!(p.scheme(), scheme.name());
            assert_eq!(p.is_ordered(), scheme == Scheme::Range);
        }
        assert_eq!(Scheme::parse("HASH"), Some(Scheme::Hash));
        assert_eq!(Scheme::parse("nope"), None);
    }
}
