//! Slice sampling helpers (`SliceRandom`).

use crate::{RngCore, SampleRange};

/// Shuffling and random choice over slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<u64>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10u64, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
