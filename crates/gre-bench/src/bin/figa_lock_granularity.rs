//! Figure A (appendix): ALEX+ lock granularity — one optimistic lock per data
//! node vs one lock per 256 records — under the balanced workload.
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_learned::{AlexConfig, AlexPlus, LockGranularity};
use gre_workloads::{run_concurrent, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!(
        "# Figure A: ALEX+ lock granularity (balanced workload, {} threads)",
        opts.threads
    );
    println!(
        "{:<10} {:>18} {:>22}",
        "dataset", "per-node (Mop/s)", "per-256-records (Mop/s)"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::Balanced);
        let mut per_node =
            AlexPlus::<u64>::with_config(AlexConfig::default(), LockGranularity::PerNode);
        let mut per_group =
            AlexPlus::<u64>::with_config(AlexConfig::default(), LockGranularity::PerRecordGroup);
        let rn = run_concurrent(&mut per_node, &workload, opts.threads);
        let rg = run_concurrent(&mut per_group, &workload, opts.threads);
        println!(
            "{:<10} {:>18.3} {:>22.3}",
            ds.name(),
            rn.throughput_mops(),
            rg.throughput_mops()
        );
    }
}
