//! The canonical typed request/response vocabulary of the serving stack.
//!
//! Every layer that moves operations around — workload generators, the
//! batched shard pipeline, client sessions — speaks in terms of [`Request`]
//! and answers with [`Response`]. Each request variant has exactly one
//! response shape (`Get -> Option<Payload>`, `Insert -> bool`, …), so a
//! client that submitted a batch can read *its own* outcomes instead of the
//! merged counters the old fire-and-forget surface returned.
//!
//! Capability gating lives here too: executing a `Remove` against a backend
//! whose [`IndexMeta::supports_delete`] is false yields
//! [`Response::Error`]\([`IndexError::Unsupported`]\) instead of a silent
//! no-op, so misconfigured deployments fail loudly at the first request.

use crate::index::{ConcurrentIndex, Index, IndexMeta, RangeSpec};
use crate::key::{Key, Payload};
use std::fmt;

/// A single typed request against an index.
///
/// `Request<u64>` is re-exported by `gre-workloads` as `Op`, making this the
/// one operation vocabulary from workload generation down to shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<K> {
    /// Point lookup of a key. Answered by [`Response::Get`].
    Get(K),
    /// Insert a key with a payload (upsert). Answered by [`Response::Insert`]
    /// with `true` iff the key was newly created.
    Insert(K, Payload),
    /// Update the payload of an (expected-present) key in place. Answered by
    /// [`Response::Update`] with `true` iff the key was present.
    Update(K, Payload),
    /// Delete a key. Answered by [`Response::Remove`] with the evicted
    /// payload.
    Remove(K),
    /// Range scan per [`RangeSpec`]. Answered by [`Response::Range`] with the
    /// matching entries in ascending key order.
    Range(RangeSpec<K>),
}

/// Operation kinds, used for per-kind latency sampling and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    Get,
    Insert,
    Update,
    Remove,
    Range,
}

impl RequestKind {
    /// All kinds, in reporting order.
    pub const ALL: [RequestKind; 5] = [
        RequestKind::Get,
        RequestKind::Insert,
        RequestKind::Update,
        RequestKind::Remove,
        RequestKind::Range,
    ];

    /// Number of kinds (the length of [`RequestKind::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this kind in [`RequestKind::ALL`], for kind-indexed
    /// tables like [`crate::latency::KindLatency`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RequestKind::Get => 0,
            RequestKind::Insert => 1,
            RequestKind::Update => 2,
            RequestKind::Remove => 3,
            RequestKind::Range => 4,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Get => "get",
            RequestKind::Insert => "insert",
            RequestKind::Update => "update",
            RequestKind::Remove => "remove",
            RequestKind::Range => "range",
        }
    }

    /// Whether operations of this kind mutate the index.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            RequestKind::Insert | RequestKind::Update | RequestKind::Remove
        )
    }
}

impl<K: Key> Request<K> {
    /// The kind of this request.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Get(_) => RequestKind::Get,
            Request::Insert(_, _) => RequestKind::Insert,
            Request::Update(_, _) => RequestKind::Update,
            Request::Remove(_) => RequestKind::Remove,
            Request::Range(_) => RequestKind::Range,
        }
    }

    /// Whether the request mutates the index.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Insert(_, _) | Request::Update(_, _) | Request::Remove(_)
        )
    }

    /// The key this request is routed by in a partitioned store: the target
    /// key for point operations, the scan start key for ranges (the executor
    /// continues a scan that crosses into neighbouring shards).
    #[inline]
    pub fn route_key(&self) -> K {
        match *self {
            Request::Get(k)
            | Request::Insert(k, _)
            | Request::Update(k, _)
            | Request::Remove(k) => k,
            Request::Range(spec) => spec.start,
        }
    }

    /// Execute against a concurrent index, gating on `meta`'s capability
    /// flags. Pass a cached [`IndexMeta`] when executing many requests:
    /// `meta()` may itself take locks on composite indexes.
    ///
    /// Range responses are clipped to the spec's key window here, so the
    /// optional inclusive end bound holds even over backends whose `range`
    /// treats [`RangeSpec::end`] as advisory and only honors the count.
    pub fn execute<I: ConcurrentIndex<K> + ?Sized>(
        self,
        index: &I,
        meta: &IndexMeta,
    ) -> Response<K> {
        match self {
            Request::Get(k) => Response::Get(index.get(k)),
            Request::Insert(k, v) => Response::Insert(index.insert(k, v)),
            Request::Update(k, v) => Response::Update(index.update(k, v)),
            Request::Remove(k) => {
                if meta.supports_delete {
                    Response::Remove(index.remove(k))
                } else {
                    Response::Error(IndexError::Unsupported("remove"))
                }
            }
            Request::Range(spec) => {
                if meta.supports_range {
                    let mut out = Vec::new();
                    index.range(spec, &mut out);
                    clip_to_window(&spec, &mut out);
                    Response::Range(out)
                } else {
                    Response::Error(IndexError::Unsupported("range"))
                }
            }
        }
    }

    /// Execute against a single-threaded index (same gating and range
    /// clipping as [`Request::execute`]).
    pub fn execute_mut<I: Index<K> + ?Sized>(self, index: &mut I, meta: &IndexMeta) -> Response<K> {
        match self {
            Request::Get(k) => Response::Get(index.get(k)),
            Request::Insert(k, v) => Response::Insert(index.insert(k, v)),
            Request::Update(k, v) => Response::Update(index.update(k, v)),
            Request::Remove(k) => {
                if meta.supports_delete {
                    Response::Remove(index.remove(k))
                } else {
                    Response::Error(IndexError::Unsupported("remove"))
                }
            }
            Request::Range(spec) => {
                if meta.supports_range {
                    let mut out = Vec::new();
                    index.range(spec, &mut out);
                    clip_to_window(&spec, &mut out);
                    Response::Range(out)
                } else {
                    Response::Error(IndexError::Unsupported("range"))
                }
            }
        }
    }
}

/// Drop the (sorted, ascending) tail of `out` that overshot the spec's key
/// window — backends may honor only the count limit and leave the inclusive
/// end bound to the caller.
fn clip_to_window<K: Key>(spec: &RangeSpec<K>, out: &mut Vec<(K, Payload)>) {
    if spec.end.is_some() {
        while out.last().is_some_and(|&(k, _)| !spec.admits(k)) {
            out.pop();
        }
    }
}

/// The typed outcome of one executed [`Request`]. Variants correspond
/// one-to-one with request variants, plus [`Response::Error`] for requests a
/// backend cannot serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response<K> {
    /// Payload of the looked-up key, if present.
    Get(Option<Payload>),
    /// `true` iff the insert created a new key (vs. updating in place).
    Insert(bool),
    /// `true` iff the updated key was present.
    Update(bool),
    /// Payload of the removed key, if it was present.
    Remove(Option<Payload>),
    /// Entries returned by a range scan, in ascending key order.
    Range(Vec<(K, Payload)>),
    /// The request could not be served (e.g. a delete against a backend
    /// without delete support).
    Error(IndexError),
}

impl<K> Response<K> {
    /// Whether this response reports an execution error.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }

    /// The lookup outcome, if this is a [`Response::Get`].
    pub fn as_get(&self) -> Option<Option<Payload>> {
        match self {
            Response::Get(p) => Some(*p),
            _ => None,
        }
    }
}

/// Errors surfaced per operation through [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The backend does not implement this operation (its [`IndexMeta`]
    /// capability flag is off). The payload names the operation.
    Unsupported(&'static str),
    /// The serving layer is shutting down (or its durability tier has
    /// fail-stopped): the operation was **not** executed and never will be.
    /// This is a terminal per-op answer — submitters can distinguish a
    /// drained-without-executing batch from a completed one.
    Shutdown,
    /// Admission control shed the operation: every eligible server was over
    /// its latency SLO, so the request was rejected without execution.
    /// Unlike [`IndexError::Shutdown`] this is transient — the same request
    /// may succeed once the breaching servers recover.
    Overloaded,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Unsupported(op) => write!(f, "operation not supported by backend: {op}"),
            IndexError::Shutdown => write!(f, "serving layer shut down before execution"),
            IndexError::Overloaded => {
                write!(f, "admission control shed the operation (SLO breach)")
            }
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MutexIndex;
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
        supports_delete: bool,
        supports_range: bool,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: self.supports_delete,
                supports_range: self.supports_range,
            }
        }
    }

    fn capable() -> MapIndex {
        MapIndex {
            supports_delete: true,
            supports_range: true,
            ..Default::default()
        }
    }

    #[test]
    fn request_kinds_and_routing() {
        assert_eq!(Request::<u64>::Get(7).kind(), RequestKind::Get);
        assert_eq!(Request::<u64>::Insert(8, 1).kind(), RequestKind::Insert);
        assert_eq!(Request::<u64>::Update(9, 1).kind(), RequestKind::Update);
        assert_eq!(Request::<u64>::Remove(10).kind(), RequestKind::Remove);
        assert_eq!(
            Request::<u64>::Range(RangeSpec::new(11, 5)).kind(),
            RequestKind::Range
        );
        assert_eq!(Request::<u64>::Get(7).route_key(), 7);
        assert_eq!(Request::<u64>::Range(RangeSpec::new(11, 5)).route_key(), 11);
        assert!(Request::<u64>::Insert(1, 1).is_write());
        assert!(Request::<u64>::Update(1, 1).is_write());
        assert!(Request::<u64>::Remove(1).is_write());
        assert!(!Request::<u64>::Get(1).is_write());
        assert!(!Request::<u64>::Range(RangeSpec::new(1, 1)).is_write());
    }

    #[test]
    fn execute_mut_returns_typed_outcomes() {
        let mut idx = capable();
        idx.bulk_load(&[(1, 10), (5, 50)]);
        let meta = idx.meta();
        assert_eq!(
            Request::Get(1).execute_mut(&mut idx, &meta),
            Response::Get(Some(10))
        );
        assert_eq!(
            Request::Get(2).execute_mut(&mut idx, &meta),
            Response::Get(None)
        );
        assert_eq!(
            Request::Insert(2, 20).execute_mut(&mut idx, &meta),
            Response::Insert(true)
        );
        assert_eq!(
            Request::Insert(2, 21).execute_mut(&mut idx, &meta),
            Response::Insert(false)
        );
        assert_eq!(
            Request::Update(2, 22).execute_mut(&mut idx, &meta),
            Response::Update(true)
        );
        assert_eq!(
            Request::Update(99, 0).execute_mut(&mut idx, &meta),
            Response::Update(false)
        );
        assert_eq!(
            Request::Remove(2).execute_mut(&mut idx, &meta),
            Response::Remove(Some(22))
        );
        assert_eq!(
            Request::Range(RangeSpec::new(0, 10)).execute_mut(&mut idx, &meta),
            Response::Range(vec![(1, 10), (5, 50)])
        );
    }

    #[test]
    fn unsupported_operations_fail_loudly() {
        let mut idx = MapIndex::default(); // no delete, no range
        idx.bulk_load(&[(1, 10)]);
        let meta = idx.meta();
        let r = Request::Remove(1).execute_mut(&mut idx, &meta);
        assert_eq!(r, Response::Error(IndexError::Unsupported("remove")));
        assert!(r.is_error());
        let r = Request::Range(RangeSpec::new(0, 5)).execute_mut(&mut idx, &meta);
        assert_eq!(r, Response::Error(IndexError::Unsupported("range")));
        // The gated key is still present: the request was rejected, not
        // silently half-applied.
        assert_eq!(idx.get(1), Some(10));
    }

    #[test]
    fn execute_works_through_concurrent_adapters() {
        let mut wrapped = MutexIndex::new(capable(), "map-mutex");
        ConcurrentIndex::bulk_load(&mut wrapped, &[(1, 10), (2, 20)]);
        let meta = ConcurrentIndex::meta(&wrapped);
        assert_eq!(
            Request::Get(2).execute(&wrapped, &meta),
            Response::Get(Some(20))
        );
        assert_eq!(
            Request::Update(2, 21).execute(&wrapped, &meta),
            Response::Update(true)
        );
        assert_eq!(
            Request::Remove(1).execute(&wrapped, &meta),
            Response::Remove(Some(10))
        );
        assert_eq!(
            Request::Range(RangeSpec::bounded(0, 10, 100)).execute(&wrapped, &meta),
            Response::Range(vec![(2, 21)])
        );
    }

    #[test]
    fn execute_clips_bounded_ranges_over_end_ignorant_backends() {
        /// A backend that honors only the count limit — like most index
        /// implementations — leaving the end bound to the executor.
        struct CountOnlyIndex(MapIndex);
        impl Index<u64> for CountOnlyIndex {
            fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
                self.0.bulk_load(entries);
            }
            fn get(&self, key: u64) -> Option<Payload> {
                self.0.get(key)
            }
            fn insert(&mut self, key: u64, value: Payload) -> bool {
                self.0.insert(key, value)
            }
            fn remove(&mut self, key: u64) -> Option<Payload> {
                self.0.remove(key)
            }
            fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
                // Deliberately ignore spec.end.
                self.0.range(RangeSpec::new(spec.start, spec.count), out)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn memory_usage(&self) -> usize {
                self.0.memory_usage()
            }
            fn meta(&self) -> IndexMeta {
                self.0.meta()
            }
        }

        let mut idx = CountOnlyIndex(capable());
        idx.bulk_load(&[(1, 10), (3, 30), (5, 50), (7, 70)]);
        let meta = idx.meta();
        // The raw backend overshoots the window…
        let mut raw = Vec::new();
        idx.range(RangeSpec::bounded(2, 5, 10), &mut raw);
        assert_eq!(raw, vec![(3, 30), (5, 50), (7, 70)]);
        // …but the typed execution path clips it to the contract.
        assert_eq!(
            Request::Range(RangeSpec::bounded(2, 5, 10)).execute_mut(&mut idx, &meta),
            Response::Range(vec![(3, 30), (5, 50)])
        );
    }

    #[test]
    fn response_accessors() {
        let r = Response::<u64>::Get(Some(5));
        assert_eq!(r.as_get(), Some(Some(5)));
        assert!(!r.is_error());
        assert_eq!(Response::<u64>::Insert(true).as_get(), None);
        let e = IndexError::Unsupported("range");
        assert!(e.to_string().contains("range"));
    }
}
