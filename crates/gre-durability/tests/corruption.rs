//! Corruption-class integration tests: every way a WAL can rot on disk must
//! be *detected*, recovery must stop at the last valid record, and nothing
//! may panic — including on adversarial random bytes.

use gre_core::Request;
use gre_durability::record::RecordError;
use gre_durability::recover::StopReason;
use gre_durability::util::TempDir;
use gre_durability::{decode_record, DurableLog, Recovery, SyncPolicy};
use std::path::{Path, PathBuf};

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("shard-0.wal")
}

/// Three groups on one shard; returns the byte offsets of each record.
fn seed_log(dir: &Path) -> Vec<usize> {
    let log = DurableLog::create(dir, 1, SyncPolicy::EveryGroup).unwrap();
    log.log_group(0, &[Request::Insert(1, 10), Request::Insert(2, 20)])
        .unwrap();
    log.log_group(0, &[Request::Update(2, 21), Request::Remove(1)])
        .unwrap();
    log.log_group(0, &[Request::Insert(3, 30)]).unwrap();
    drop(log);
    let bytes = std::fs::read(wal_path(dir)).unwrap();
    let mut offsets = vec![0usize];
    let mut at = 0usize;
    while at < bytes.len() {
        at += decode_record(&bytes, at).unwrap().frame_len;
        offsets.push(at);
    }
    offsets // [0, end-of-rec1, end-of-rec2, end-of-rec3]
}

fn recovered_groups(dir: &Path) -> (usize, StopReason) {
    let rec = Recovery::recover(dir).unwrap();
    (rec.shards[0].groups.len(), rec.shards[0].stop)
}

#[test]
fn payload_bit_flip_is_caught_by_the_checksum() {
    let dir = TempDir::new("corrupt-bitflip");
    let offsets = seed_log(dir.path());
    let pristine = std::fs::read(wal_path(dir.path())).unwrap();
    // Flip one bit inside the second record's op payload.
    let mut bytes = pristine.clone();
    bytes[offsets[1] + 20] ^= 0x10;
    std::fs::write(wal_path(dir.path()), &bytes).unwrap();

    let (groups, stop) = recovered_groups(dir.path());
    assert_eq!(groups, 1, "scan stops at the last valid record");
    assert_eq!(stop, StopReason::Corrupt(RecordError::BadChecksum));
}

#[test]
fn truncated_length_prefix_is_a_torn_tail() {
    let dir = TempDir::new("corrupt-shortlen");
    let offsets = seed_log(dir.path());
    let pristine = std::fs::read(wal_path(dir.path())).unwrap();
    // Keep two full records plus 3 bytes of the third's length prefix.
    std::fs::write(wal_path(dir.path()), &pristine[..offsets[2] + 3]).unwrap();

    let (groups, stop) = recovered_groups(dir.path());
    assert_eq!(groups, 2);
    assert_eq!(stop, StopReason::TornTail { dropped: 3 });

    // Resume repairs the tail: the file shrinks to the valid prefix and new
    // groups append cleanly after it.
    let rec = Recovery::recover(dir.path()).unwrap();
    let resumed = rec.resume(SyncPolicy::EveryGroup).unwrap();
    assert_eq!(
        std::fs::metadata(wal_path(dir.path())).unwrap().len(),
        offsets[2] as u64
    );
    resumed.log_group(0, &[Request::Insert(4, 40)]).unwrap();
    let (groups, stop) = recovered_groups(dir.path());
    assert_eq!((groups, stop), (3, StopReason::CleanEnd));
}

#[test]
fn duplicate_tail_record_stops_at_the_sequence_break() {
    let dir = TempDir::new("corrupt-duptail");
    let offsets = seed_log(dir.path());
    let pristine = std::fs::read(wal_path(dir.path())).unwrap();
    // A torn rewrite that re-appends the final record: valid frame, stale
    // seq. The checksum holds, so only seq continuity can reject it.
    let mut bytes = pristine.clone();
    bytes.extend_from_slice(&pristine[offsets[2]..]);
    std::fs::write(wal_path(dir.path()), &bytes).unwrap();

    let (groups, stop) = recovered_groups(dir.path());
    assert_eq!(groups, 3, "all original records survive");
    assert_eq!(
        stop,
        StopReason::SeqBreak {
            expected: 4,
            found: 3
        }
    );
}

#[test]
fn flipping_any_bit_anywhere_never_panics_and_never_gains_records() {
    let dir = TempDir::new("corrupt-sweep");
    seed_log(dir.path());
    let pristine = std::fs::read(wal_path(dir.path())).unwrap();
    for byte in 0..pristine.len() {
        for bit in 0..8 {
            let mut bytes = pristine.clone();
            bytes[byte] ^= 1 << bit;
            std::fs::write(wal_path(dir.path()), &bytes).unwrap();
            let rec = Recovery::recover(dir.path()).unwrap();
            assert!(
                rec.shards[0].groups.len() <= 3,
                "flip {byte}.{bit} must not invent records"
            );
        }
    }
}

#[test]
fn random_garbage_logs_recover_to_empty_without_panicking() {
    let dir = TempDir::new("corrupt-garbage");
    let _ = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
    // A cheap deterministic byte stream; no record structure whatsoever.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for len in [1usize, 7, 64, 1024] {
        let mut garbage = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            garbage.push((state >> 56) as u8);
        }
        std::fs::write(wal_path(dir.path()), &garbage).unwrap();
        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.shards[0].groups.is_empty(), "len {len}");
        assert!(!matches!(rec.shards[0].stop, StopReason::CleanEnd));
    }
}
