//! Table 2 + Figure 1: the datasets, their CDF shapes and hardness coordinates.
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_pla::HardnessConfig;

fn main() {
    let opts = RunOpts::from_env();
    println!("# Table 2: datasets (emulated; {} keys each)", opts.keys);
    println!(
        "{:<10} {:<45} {:>12} {:>12} {:>14}",
        "dataset", "description", "H(eps=32)", "H(eps=4096)", "1-line MSE"
    );
    for ds in Dataset::ALL_REAL {
        let profile = ds.profile();
        let h = ds.hardness(opts.keys, opts.seed, HardnessConfig::default());
        println!(
            "{:<10} {:<45} {:>12} {:>12} {:>14.3e}",
            profile.name, profile.description, h.local, h.global, h.single_line_mse
        );
    }
    // Figure 1: CDFs of planet and genome (16-point summaries).
    for ds in [Dataset::Planet, Dataset::Genome] {
        let keys = ds.generate(opts.keys, opts.seed);
        println!("\n# Figure 1: CDF of {}", ds.name());
        for p in 0..=16 {
            let idx = (p * (keys.len() - 1)) / 16;
            println!(
                "  {:>6.2}% of keys <= {}",
                100.0 * p as f64 / 16.0,
                keys[idx]
            );
        }
    }
}
