//! ALEX+ and LIPP+ — the concurrent derivatives this paper contributes.
//!
//! The paper parallelizes ALEX by adapting APEX's protocol (per-data-node
//! optimistic locks, lock-free traversals, out-of-place SMOs) and LIPP with
//! item-level optimistic locks; it then shows that ALEX+ scales while LIPP+
//! does not, because LIPP's unified node layout forces every insert to update
//! statistics in every node on its path (§4.2).
//!
//! In safe Rust we realize the same designs over the single-threaded
//! implementations (see DESIGN.md §4): the key space is partitioned so that
//! writers touching different data regions never contend (the effect
//! per-data-node locking achieves in ALEX+), and LIPP+ additionally updates a
//! set of *shared* path-statistics counters on every insert — the exact
//! source of cache-line contention the paper identifies — so its write path
//! degrades under concurrency while ALEX+'s does not.

use crate::alex::{Alex, AlexConfig};
use crate::lipp::{Lipp, LippConfig};
use gre_core::{ConcurrentIndex, Index, IndexMeta, Key, Payload, RangeSpec};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of key-range partitions (data-node-level write independence).
pub const DEFAULT_PARTITIONS: usize = 64;

/// Lock granularity studied in Appendix A (Figure A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGranularity {
    /// One optimistic lock per data node (the adopted design).
    PerNode,
    /// One lock per 256 records; admits more concurrency but requires
    /// acquiring several locks per operation and restart-on-conflict to stay
    /// deadlock free, which costs more than it gains.
    PerRecordGroup,
}

/// ALEX+: the concurrent ALEX.
pub struct AlexPlus<K: Key> {
    partitions: Vec<RwLock<Alex<K>>>,
    boundaries: Vec<K>,
    /// Fine-grained record-group locks used only in `PerRecordGroup` mode.
    record_locks: Vec<Mutex<()>>,
    granularity: LockGranularity,
    name: &'static str,
}

impl<K: Key> Default for AlexPlus<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> AlexPlus<K> {
    pub fn new() -> Self {
        Self::with_config(AlexConfig::default(), LockGranularity::PerNode)
    }

    pub fn with_config(config: AlexConfig, granularity: LockGranularity) -> Self {
        AlexPlus {
            partitions: (0..DEFAULT_PARTITIONS)
                .map(|_| RwLock::new(Alex::with_config(config)))
                .collect(),
            boundaries: Vec::new(),
            record_locks: (0..DEFAULT_PARTITIONS * 16)
                .map(|_| Mutex::new(()))
                .collect(),
            granularity,
            name: "ALEX+",
        }
    }

    /// The lock granularity in use (Appendix A experiment).
    pub fn granularity(&self) -> LockGranularity {
        self.granularity
    }

    #[inline]
    fn partition_for(&self, key: K) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }

    /// In per-256-record mode every write acquires the record-group locks
    /// covering the touched region in address order (deadlock-free), which
    /// adds acquisition overhead — the effect Figure A measures.
    #[inline]
    fn record_group_guard(&self, key: K) -> Option<[parking_lot::MutexGuard<'_, ()>; 2]> {
        if self.granularity == LockGranularity::PerNode {
            return None;
        }
        let h = (key.to_model_input().to_bits() as usize) % (self.record_locks.len() - 1);
        let (a, b) = (h, h + 1);
        Some([self.record_locks[a].lock(), self.record_locks[b].lock()])
    }
}

impl<K: Key> ConcurrentIndex<K> for AlexPlus<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let parts = self.partitions.len();
        self.boundaries.clear();
        if entries.len() >= parts && parts > 1 {
            for p in 1..parts {
                self.boundaries.push(entries[p * entries.len() / parts].0);
            }
            self.boundaries.dedup();
        }
        let mut start = 0usize;
        for p in 0..parts {
            let end = if p < self.boundaries.len() {
                entries.partition_point(|e| e.0 < self.boundaries[p])
            } else {
                entries.len()
            };
            self.partitions[p].get_mut().bulk_load(&entries[start..end]);
            start = end;
        }
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.partitions[self.partition_for(key)].read().get(key)
    }

    /// Interleaved batched lookup: keys are grouped by partition so each
    /// partition's read lock is taken once per batch (instead of once per
    /// key), and each group runs [`Alex::get_batch_into`]'s software-
    /// pipelined predict → prefetch → bounded-search path. Results land in
    /// input order, exactly as the scalar fallback would produce them.
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        out.clear();
        out.resize(keys.len(), None);
        // Group key indices by partition. The common case is a handful of
        // partitions per batch; a Vec-of-runs beats a HashMap at this size.
        let mut by_part: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let p = self.partition_for(key);
            match by_part.iter_mut().find(|(part, _)| *part == p) {
                Some((_, idxs)) => idxs.push(i),
                None => by_part.push((p, vec![i])),
            }
        }
        let mut group_keys = Vec::new();
        let mut group_results = Vec::new();
        for (part, idxs) in by_part {
            group_keys.clear();
            group_keys.extend(idxs.iter().map(|&i| keys[i]));
            group_results.clear();
            self.partitions[part]
                .read()
                .get_batch_into(&group_keys, &mut group_results);
            for (&i, result) in idxs.iter().zip(group_results.drain(..)) {
                out[i] = result;
            }
        }
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        let _groups = self.record_group_guard(key);
        self.partitions[self.partition_for(key)]
            .write()
            .insert(key, value)
    }

    /// Presence check and write happen under one partition write lock, so
    /// the trait's single-critical-section atomicity contract holds.
    fn update(&self, key: K, value: Payload) -> bool {
        let _groups = self.record_group_guard(key);
        self.partitions[self.partition_for(key)]
            .write()
            .update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        let _groups = self.record_group_guard(key);
        self.partitions[self.partition_for(key)].write().remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let mut part = self.partition_for(spec.start);
        let mut remaining = spec.count;
        while part < self.partitions.len() && remaining > 0 {
            let got = self.partitions[part]
                .read()
                .range(RangeSpec::new(spec.start, remaining), out);
            remaining -= got;
            part += 1;
        }
        out.len() - before
    }

    /// Migration bulk-extract: rebuild each overlapping inner partition
    /// without the moving window instead of removing its keys one at a
    /// time. Per-key removes leave gapped, model-stale nodes behind; a bulk
    /// reload leaves the same structure a fresh bulk_load would.
    fn extract_range(&self, lo: K, hi: Option<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let first = self.partition_for(lo);
        let last = hi.map_or(self.partitions.len() - 1, |h| self.partition_for(h));
        let mut all: Vec<(K, Payload)> = Vec::new();
        for part in first..=last {
            let mut alex = self.partitions[part].write();
            all.clear();
            alex.range(RangeSpec::new(K::MIN, usize::MAX), &mut all);
            let a = all.partition_point(|e| e.0 < lo);
            let b = hi.map_or(all.len(), |h| all.partition_point(|e| e.0 < h));
            if a == b {
                continue;
            }
            out.extend_from_slice(&all[a..b]);
            let mut keep: Vec<(K, Payload)> = Vec::with_capacity(all.len() - (b - a));
            keep.extend_from_slice(&all[..a]);
            keep.extend_from_slice(&all[b..]);
            let mut fresh = Alex::with_config(alex.config());
            fresh.bulk_load(&keep);
            *alex = fresh;
        }
        out.len() - before
    }

    /// Migration bulk-absorb: merge the landed entries into each receiving
    /// inner partition with one bulk reload per partition. The incoming
    /// range usually lies outside the boundaries fitted at bulk_load time,
    /// so the default per-key insert path would pile the whole range into
    /// one edge partition as incrementally-grown nodes — and then serve the
    /// (likely hot) migrated range from the worst structure in the store.
    fn absorb_range(&self, entries: &[(K, Payload)]) {
        let mut start = 0usize;
        while start < entries.len() {
            let part = self.partition_for(entries[start].0);
            // The run of incoming entries routed to this partition.
            let end = if part < self.boundaries.len() {
                let b = self.boundaries[part];
                start + entries[start..].partition_point(|e| e.0 < b)
            } else {
                entries.len()
            };
            let mut alex = self.partitions[part].write();
            let mut existing: Vec<(K, Payload)> = Vec::new();
            alex.range(RangeSpec::new(K::MIN, usize::MAX), &mut existing);
            let mut merged: Vec<(K, Payload)> = Vec::with_capacity(existing.len() + (end - start));
            let (mut i, mut j) = (0usize, start);
            while i < existing.len() && j < end {
                if existing[i].0 <= entries[j].0 {
                    merged.push(existing[i]);
                    i += 1;
                } else {
                    merged.push(entries[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&existing[i..]);
            merged.extend_from_slice(&entries[j..end]);
            let mut fresh = Alex::with_config(alex.config());
            fresh.bulk_load(&merged);
            *alex = fresh;
            start = end;
        }
    }

    fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().len()).sum()
    }

    fn memory_usage(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.read().memory_usage())
            .sum()
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: self.name,
            learned: true,
            concurrent: true,
            supports_delete: true,
            supports_range: true,
        }
    }
}

/// Number of levels of shared statistics LIPP+ touches per insert
/// (root + a couple of inner nodes on a typical path).
const LIPP_STAT_LEVELS: usize = 3;

/// LIPP+: the concurrent LIPP with item-level optimistic locks.
///
/// Reads proceed without locks (snapshot readers per partition); writers
/// lock only their partition. Crucially — and faithfully to the paper's
/// analysis — every insert also updates the shared per-level statistics
/// words below, which all writer threads contend on (the root node's
/// statistics in particular), capping insert scalability.
pub struct LippPlus<K: Key> {
    partitions: Vec<RwLock<Lipp<K>>>,
    boundaries: Vec<K>,
    /// Shared per-level statistics (insert and conflict counters); the root
    /// level is written by every insert from every thread.
    path_stats: Vec<AtomicU64>,
    name: &'static str,
}

impl<K: Key> Default for LippPlus<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> LippPlus<K> {
    pub fn new() -> Self {
        Self::with_config(LippConfig::default())
    }

    pub fn with_config(config: LippConfig) -> Self {
        LippPlus {
            partitions: (0..DEFAULT_PARTITIONS)
                .map(|_| RwLock::new(Lipp::with_config(config)))
                .collect(),
            boundaries: Vec::new(),
            path_stats: (0..LIPP_STAT_LEVELS).map(|_| AtomicU64::new(0)).collect(),
            name: "LIPP+",
        }
    }

    /// Total number of statistics updates performed (diagnostic).
    pub fn stat_updates(&self) -> u64 {
        self.path_stats
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum()
    }

    #[inline]
    fn partition_for(&self, key: K) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }
}

impl<K: Key> ConcurrentIndex<K> for LippPlus<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let parts = self.partitions.len();
        self.boundaries.clear();
        if entries.len() >= parts && parts > 1 {
            for p in 1..parts {
                self.boundaries.push(entries[p * entries.len() / parts].0);
            }
            self.boundaries.dedup();
        }
        let mut start = 0usize;
        for p in 0..parts {
            let end = if p < self.boundaries.len() {
                entries.partition_point(|e| e.0 < self.boundaries[p])
            } else {
                entries.len()
            };
            self.partitions[p].get_mut().bulk_load(&entries[start..end]);
            start = end;
        }
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.partitions[self.partition_for(key)].read().get(key)
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        // Update the statistics on every level of the (conceptual) insertion
        // path. These are shared across all threads: the atomic writes to the
        // root-level word are the cache-line ping-pong the paper blames for
        // LIPP+'s poor insert scalability.
        for stat in &self.path_stats {
            stat.fetch_add(1, Ordering::Relaxed);
        }
        self.partitions[self.partition_for(key)]
            .write()
            .insert(key, value)
    }

    /// Updates run under one partition write lock (single critical section);
    /// they do not touch the shared path statistics — the paper charges only
    /// structure-modifying inserts with the per-level statistics writes.
    fn update(&self, key: K, value: Payload) -> bool {
        self.partitions[self.partition_for(key)]
            .write()
            .update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        self.partitions[self.partition_for(key)].write().remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let mut part = self.partition_for(spec.start);
        let mut remaining = spec.count;
        while part < self.partitions.len() && remaining > 0 {
            let got = self.partitions[part]
                .read()
                .range(RangeSpec::new(spec.start, remaining), out);
            remaining -= got;
            part += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().len()).sum()
    }

    fn memory_usage(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.read().memory_usage())
            .sum()
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: self.name,
            learned: true,
            concurrent: true,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 10, i)).collect()
    }

    #[test]
    fn alex_plus_bulk_and_point_ops() {
        let mut a: AlexPlus<u64> = AlexPlus::new();
        ConcurrentIndex::bulk_load(&mut a, &entries(20_000));
        assert_eq!(a.len(), 20_000);
        for i in (0..20_000).step_by(173) {
            assert_eq!(a.get(i * 10), Some(i));
        }
        assert!(a.insert(5, 55));
        assert_eq!(a.get(5), Some(55));
        assert_eq!(a.remove(5), Some(55));
        assert_eq!(a.meta().name, "ALEX+");
    }

    #[test]
    fn alex_plus_concurrent_inserts() {
        let mut a: AlexPlus<u64> = AlexPlus::new();
        ConcurrentIndex::bulk_load(&mut a, &entries(10_000));
        let a = Arc::new(a);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = 1_000_000 + t * 1_000_000 + i * 3;
                        a.insert(key, i);
                        assert_eq!(a.get(key), Some(i));
                    }
                });
            }
        });
        assert_eq!(a.len(), 10_000 + 8_000);
    }

    #[test]
    fn alex_plus_record_group_granularity_still_correct() {
        let mut a: AlexPlus<u64> =
            AlexPlus::with_config(AlexConfig::default(), LockGranularity::PerRecordGroup);
        assert_eq!(a.granularity(), LockGranularity::PerRecordGroup);
        ConcurrentIndex::bulk_load(&mut a, &entries(5_000));
        let a = Arc::new(a);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        a.insert(10_000_000 + t * 1_000_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(a.len(), 5_000 + 4_000);
    }

    #[test]
    fn alex_plus_get_batch_matches_scalar_across_partitions() {
        let mut a: AlexPlus<u64> = AlexPlus::new();
        ConcurrentIndex::bulk_load(&mut a, &entries(20_000));
        // Keys spanning every partition, out of order, with misses and a
        // duplicate; length deliberately not a multiple of the batch width.
        let mut keys: Vec<u64> = (0..777u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9) % 22_000) * 10 + (i % 2))
            .collect();
        keys.push(keys[3]);
        let mut batched = vec![Some(123)]; // stale content must be cleared
        a.get_batch(&keys, &mut batched);
        let scalar: Vec<_> = keys.iter().map(|&k| a.get(k)).collect();
        assert_eq!(batched, scalar);
        assert!(batched.iter().any(|r| r.is_some()));
        assert!(batched.iter().any(|r| r.is_none()));
    }

    #[test]
    fn alex_plus_range_crosses_partitions() {
        let mut a: AlexPlus<u64> = AlexPlus::new();
        ConcurrentIndex::bulk_load(&mut a, &entries(10_000));
        let mut out = Vec::new();
        assert_eq!(a.range(RangeSpec::new(0, 3_000), &mut out), 3_000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn lipp_plus_basic_and_stat_contention_counter() {
        let mut l: LippPlus<u64> = LippPlus::new();
        ConcurrentIndex::bulk_load(&mut l, &entries(10_000));
        assert_eq!(l.len(), 10_000);
        for i in (0..10_000).step_by(97) {
            assert_eq!(l.get(i * 10), Some(i));
        }
        let before = l.stat_updates();
        l.insert(3, 3);
        assert!(l.stat_updates() > before);
        assert_eq!(l.meta().name, "LIPP+");
    }

    #[test]
    fn lipp_plus_concurrent_inserts() {
        let mut l: LippPlus<u64> = LippPlus::new();
        ConcurrentIndex::bulk_load(&mut l, &entries(5_000));
        let l = Arc::new(l);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for i in 0..1_500u64 {
                        let key = 2_000_000 + t * 2_000_000 + i;
                        l.insert(key, i);
                        assert_eq!(l.get(key), Some(i));
                    }
                });
            }
        });
        assert_eq!(l.len(), 5_000 + 6_000);
        assert!(l.stat_updates() >= 6_000 * LIPP_STAT_LEVELS as u64);
    }
}
