//! Shard scalability of the `gre-shard` serving layer: throughput of
//! `sharded(backend, S)` while sweeping shard count × thread count ×
//! backend on the paper's balanced workload.
//!
//! Two execution paths per configuration:
//!
//! * `direct`  — client threads call the composite `ConcurrentIndex`
//!   directly (`run_concurrent`), one routing decision per op.
//! * `batched` — the same request stream split into `OpBatch`es and fed
//!   through the `ShardPipeline` worker pool, amortizing routing and
//!   hand-off over `BATCH` ops with per-shard FIFO execution.
//!
//! `--shards N` caps the shard-count axis, `--threads T` the thread axis.

use gre_bench::{registry, RunOpts};
use gre_datasets::Dataset;
use gre_shard::{OpBatch, Partitioner, ShardPipeline};
use gre_workloads::{run_concurrent, Workload, WorkloadBuilder, WriteRatio};
use std::sync::Arc;
use std::time::Instant;

/// Ops per submitted batch on the batched path.
const BATCH: usize = 1024;

fn main() {
    let opts = RunOpts::from_env();
    let backends: Vec<&str> = if opts.quick {
        vec!["ALEX+", "B+treeOLC"]
    } else {
        vec!["ALEX+", "LIPP+", "XIndex", "B+treeOLC", "ART-OLC"]
    };
    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= opts.shards)
        .collect();
    let mut thread_points: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|t| *t <= opts.threads)
        .collect();
    if thread_points.is_empty() {
        thread_points.push(1);
    }
    let datasets: &[Dataset] = if opts.quick {
        &[Dataset::Covid]
    } else {
        &[Dataset::Covid, Dataset::Osm]
    };

    let builder = WorkloadBuilder::new(opts.seed);
    println!(
        "# Shard scalability (Mop/s), balanced workload; thread axis: {thread_points:?}; \
         batched path uses {BATCH}-op batches"
    );
    println!(
        "{:<10} {:<22} {:>6} {:<8}{}",
        "dataset",
        "index",
        "shards",
        "path",
        thread_points
            .iter()
            .map(|t| format!(" {t:>7}T"))
            .collect::<String>()
    );
    for ds in datasets {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::Balanced);
        for backend in &backends {
            for &shards in &shard_counts {
                let name = registry::sharded_name(backend, &Partitioner::range(shards));
                let mut direct = format!(
                    "{:<10} {:<22} {:>6} {:<8}",
                    ds.name(),
                    name,
                    shards,
                    "direct"
                );
                let mut batched = format!(
                    "{:<10} {:<22} {:>6} {:<8}",
                    ds.name(),
                    name,
                    shards,
                    "batched"
                );
                for &threads in &thread_points {
                    // Always the composite — even at 1 shard — so every row
                    // of the sweep measures the same structure and the
                    // shards=1 baseline includes the routing dispatch too.
                    let mut index = registry::sharded_index(backend, Partitioner::range(shards))
                        .expect("registry backend resolves");
                    let r = run_concurrent(&mut index, &workload, threads);
                    direct.push_str(&format!(" {:>8.3}", r.throughput_mops()));
                    batched.push_str(&format!(
                        " {:>8.3}",
                        run_batched(backend, shards, &workload, threads)
                    ));
                }
                println!("{direct}");
                println!("{batched}");
            }
        }
    }
}

/// Throughput of the batched pipeline path: bulk load a fresh sharded
/// composite, then time the full op stream submitted as `BATCH`-op batches
/// to a `workers`-thread pipeline.
fn run_batched(backend: &str, shards: usize, workload: &Workload, workers: usize) -> f64 {
    // A 1-shard pipeline still exercises the batch path (single queue).
    let mut index = registry::sharded_index(backend, Partitioner::range(shards))
        .expect("registry backend resolves");
    gre_core::ConcurrentIndex::bulk_load(&mut index, &workload.bulk);
    let pipeline = ShardPipeline::new(Arc::new(index), workers);
    let timer = Instant::now();
    let tickets: Vec<_> = workload
        .ops
        .chunks(BATCH)
        .map(|chunk| pipeline.submit(OpBatch::new(chunk.to_vec())))
        .collect();
    let mut executed = 0usize;
    for ticket in tickets {
        executed += ticket.wait().ops;
    }
    let elapsed = timer.elapsed().as_secs_f64();
    assert_eq!(executed, workload.ops.len(), "pipeline dropped operations");
    if elapsed == 0.0 {
        return 0.0;
    }
    executed as f64 / elapsed / 1e6
}
