//! Figure 8: end-to-end memory space after the write-only workload.
use gre_bench::{registry::single_thread_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure 8: end-to-end index size (MB) after the write-only workload");
    print!("{:<10}", "dataset");
    let names: Vec<&str> = single_thread_indexes().iter().map(|e| e.name).collect();
    for n in &names {
        print!(" {:>12}", n);
    }
    println!();
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::WriteOnly);
        print!("{:<10}", ds.name());
        for entry in single_thread_indexes() {
            let mut index = entry.index;
            let r = run_single(index.as_mut(), &workload);
            print!(" {:>12.2}", r.memory_bytes as f64 / (1024.0 * 1024.0));
        }
        println!();
    }
}
