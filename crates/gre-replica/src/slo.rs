//! Per-server latency-SLO tracking for admission control.
//!
//! Each read server (replica) owns an [`SloMonitor`]: read latencies are
//! recorded into an interval-scoped histogram, and every time the interval
//! rolls over the monitor publishes the closed interval's p99 into an
//! atomic. Admission checks ([`SloMonitor::breached`]) are then a single
//! relaxed load against the configured target — the dispatch hot path never
//! touches the histogram lock.
//!
//! This mirrors the Driver's `interval_percentiles` series (PR 7): the same
//! p99-over-interval signal, computed on the serving side where the
//! admission decision has to happen.

use gre_core::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency target for SLO-driven admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTarget {
    /// The p99-over-interval ceiling, in nanoseconds.
    pub p99_ns: u64,
    /// Width of the rolling measurement interval.
    pub interval: Duration,
}

impl SloTarget {
    /// A target with the default 100 ms measurement interval.
    pub fn p99(p99_ns: u64) -> SloTarget {
        SloTarget {
            p99_ns,
            interval: Duration::from_millis(100),
        }
    }

    /// Override the measurement interval.
    pub fn with_interval(mut self, interval: Duration) -> SloTarget {
        self.interval = interval;
        self
    }
}

/// Interval-scoped p99 tracker for one read server.
#[derive(Debug)]
pub struct SloMonitor {
    target: SloTarget,
    /// p99 of the last *closed* interval, ns; 0 until one interval closes.
    published_p99: AtomicU64,
    window: Mutex<Window>,
}

#[derive(Debug)]
struct Window {
    hist: LatencyHistogram,
    opened: Instant,
}

impl SloMonitor {
    pub fn new(target: SloTarget) -> SloMonitor {
        SloMonitor {
            target,
            published_p99: AtomicU64::new(0),
            window: Mutex::new(Window {
                hist: LatencyHistogram::new(),
                opened: Instant::now(),
            }),
        }
    }

    /// The configured target.
    pub fn target(&self) -> SloTarget {
        self.target
    }

    /// Record one observed read latency (ns). Rolls the interval over and
    /// publishes its p99 when the interval has elapsed.
    pub fn record(&self, ns: u64) {
        let mut w = self.window.lock().expect("slo window poisoned");
        w.hist.record(ns);
        if w.opened.elapsed() >= self.target.interval {
            let p99 = if w.hist.count() == 0 {
                0
            } else {
                w.hist.percentile(0.99)
            };
            self.published_p99.store(p99, Ordering::Relaxed);
            w.hist = LatencyHistogram::new();
            w.opened = Instant::now();
        }
    }

    /// p99 of the last closed interval, ns (0 before any interval closed).
    pub fn published_p99(&self) -> u64 {
        self.published_p99.load(Ordering::Relaxed)
    }

    /// Whether the last closed interval breached the target. Lock-free.
    #[inline]
    pub fn breached(&self) -> bool {
        self.published_p99() > self.target.p99_ns
    }

    /// Force-publish a p99 value (tests and fault drills: put a server
    /// into or out of breach without forging traffic timings).
    pub fn publish_for_test(&self, p99_ns: u64) {
        self.published_p99.store(p99_ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_p99_on_interval_rollover() {
        let mon = SloMonitor::new(SloTarget::p99(1_000).with_interval(Duration::ZERO));
        assert!(!mon.breached(), "no interval closed yet");
        // Zero-width interval: every record closes a window.
        mon.record(5_000);
        assert!(mon.published_p99() >= 4_000);
        assert!(mon.breached());
        mon.record(100);
        assert!(!mon.breached(), "fast interval clears the breach");
    }

    #[test]
    fn long_interval_defers_publication() {
        let mon = SloMonitor::new(SloTarget::p99(1_000).with_interval(Duration::from_secs(3600)));
        mon.record(1_000_000);
        assert_eq!(mon.published_p99(), 0, "interval still open");
        assert!(!mon.breached());
    }

    #[test]
    fn forced_publication_flips_the_breach_bit() {
        let mon = SloMonitor::new(SloTarget::p99(1_000));
        mon.publish_for_test(2_000);
        assert!(mon.breached());
        mon.publish_for_test(500);
        assert!(!mon.breached());
    }
}
