//! Figure G (appendix): YCSB A/B/C with Zipfian (0.99) request keys,
//! single-threaded and multi-threaded.
use gre_bench::{
    registry::{concurrent_indexes, single_thread_indexes},
    RunOpts,
};
use gre_datasets::Dataset;
use gre_workloads::generate::YcsbVariant;
use gre_workloads::{run_concurrent, run_single, WorkloadBuilder};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure G: YCSB throughput (Mop/s), Zipfian 0.99");
    println!(
        "{:<10} {:<8} {:<12} {:>9} {:>10}",
        "dataset", "ycsb", "index", "threads", "Mop/s"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for variant in [YcsbVariant::A, YcsbVariant::B, YcsbVariant::C] {
            let workload = builder.ycsb(&ds.name(), &keys, variant, opts.keys);
            for entry in single_thread_indexes() {
                let mut index = entry.index;
                let r = run_single(index.as_mut(), &workload);
                println!(
                    "{:<10} {:<8} {:<12} {:>9} {:>10.3}",
                    ds.name(),
                    variant.name(),
                    entry.name,
                    1,
                    r.throughput_mops()
                );
            }
            for entry in concurrent_indexes(true) {
                let mut index = entry.index;
                let r = run_concurrent(index.as_mut(), &workload, opts.threads);
                println!(
                    "{:<10} {:<8} {:<12} {:>9} {:>10.3}",
                    ds.name(),
                    variant.name(),
                    entry.name,
                    opts.threads,
                    r.throughput_mops()
                );
            }
        }
    }
}
