//! Key and payload abstractions.
//!
//! The paper evaluates one-dimensional indexes on 8-byte unsigned integer keys
//! paired with 8-byte payloads (§3.2). Learned indexes additionally need to
//! train linear models on keys, so [`Key`] requires a lossless-enough mapping
//! to `f64` (`to_model_input`) used purely for model fitting; ordering always
//! uses the native integer comparison.

use std::fmt::Debug;
use std::hash::Hash;

/// A key type usable by every index in the suite.
///
/// Implementors must provide a total order consistent with `to_model_input`
/// (monotone: `a < b` implies `a.to_model_input() <= b.to_model_input()`).
pub trait Key: Copy + Ord + Eq + Hash + Debug + Send + Sync + 'static {
    /// The smallest representable key.
    const MIN: Self;
    /// The largest representable key.
    const MAX: Self;

    /// Map the key into model space (used to fit linear models).
    fn to_model_input(&self) -> f64;

    /// Map a model-space value back to the nearest representable key,
    /// clamping to the valid domain.
    fn from_model_input(v: f64) -> Self;

    /// Radix byte view used by trie-based indexes (big-endian so byte order
    /// matches key order).
    fn to_radix_bytes(&self) -> [u8; 8];

    /// The key's successor, saturating at `MAX`.
    fn successor(&self) -> Self;
}

impl Key for u64 {
    const MIN: Self = u64::MIN;
    const MAX: Self = u64::MAX;

    #[inline]
    fn to_model_input(&self) -> f64 {
        *self as f64
    }

    #[inline]
    fn from_model_input(v: f64) -> Self {
        if v <= 0.0 {
            0
        } else if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    }

    #[inline]
    fn to_radix_bytes(&self) -> [u8; 8] {
        self.to_be_bytes()
    }

    #[inline]
    fn successor(&self) -> Self {
        self.saturating_add(1)
    }
}

impl Key for u32 {
    const MIN: Self = u32::MIN;
    const MAX: Self = u32::MAX;

    #[inline]
    fn to_model_input(&self) -> f64 {
        *self as f64
    }

    #[inline]
    fn from_model_input(v: f64) -> Self {
        if v <= 0.0 {
            0
        } else if v >= u32::MAX as f64 {
            u32::MAX
        } else {
            v as u32
        }
    }

    #[inline]
    fn to_radix_bytes(&self) -> [u8; 8] {
        (*self as u64).to_be_bytes()
    }

    #[inline]
    fn successor(&self) -> Self {
        self.saturating_add(1)
    }
}

/// The 8-byte payload type used throughout the benchmark.
pub type Payload = u64;

/// A `(key, payload)` pair, the unit stored by every index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry<K> {
    pub key: K,
    pub value: Payload,
}

impl<K: Key> Entry<K> {
    /// Create a new entry.
    #[inline]
    pub fn new(key: K, value: Payload) -> Self {
        Entry { key, value }
    }
}

/// Check that a slice of entries is sorted by strictly ascending key
/// (the precondition for bulk loading most of the indexes).
pub fn is_strictly_sorted<K: Key>(entries: &[(K, Payload)]) -> bool {
    entries.windows(2).all(|w| w[0].0 < w[1].0)
}

/// Check that a slice of entries is sorted by non-descending key (duplicates
/// allowed), the precondition for bulk loading duplicate-tolerant indexes.
pub fn is_sorted<K: Key>(entries: &[(K, Payload)]) -> bool {
    entries.windows(2).all(|w| w[0].0 <= w[1].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_model_roundtrip_is_monotone() {
        let keys = [0u64, 1, 42, 1 << 20, 1 << 52, u64::MAX / 2];
        for w in keys.windows(2) {
            assert!(w[0].to_model_input() <= w[1].to_model_input());
        }
    }

    #[test]
    fn u64_from_model_input_clamps() {
        assert_eq!(u64::from_model_input(-5.0), 0);
        assert_eq!(u64::from_model_input(f64::MAX), u64::MAX);
        assert_eq!(u64::from_model_input(77.9), 77);
    }

    #[test]
    fn u32_from_model_input_clamps() {
        assert_eq!(u32::from_model_input(-5.0), 0);
        assert_eq!(u32::from_model_input(1e20), u32::MAX);
        assert_eq!(u32::from_model_input(12.2), 12);
    }

    #[test]
    fn radix_bytes_preserve_order() {
        let a = 0x0102_0304_0506_0708u64;
        let b = 0x0102_0304_0506_0709u64;
        assert!(a.to_radix_bytes() < b.to_radix_bytes());
        let c = 5u32;
        let d = 600u32;
        assert!(c.to_radix_bytes() < d.to_radix_bytes());
    }

    #[test]
    fn successor_saturates() {
        assert_eq!(u64::MAX.successor(), u64::MAX);
        assert_eq!(41u64.successor(), 42);
        assert_eq!(u32::MAX.successor(), u32::MAX);
    }

    #[test]
    fn sortedness_checks() {
        let sorted: Vec<(u64, Payload)> = vec![(1, 0), (2, 0), (3, 0)];
        let dups: Vec<(u64, Payload)> = vec![(1, 0), (2, 0), (2, 1)];
        let unsorted: Vec<(u64, Payload)> = vec![(3, 0), (2, 0)];
        assert!(is_strictly_sorted(&sorted));
        assert!(!is_strictly_sorted(&dups));
        assert!(is_sorted(&dups));
        assert!(!is_sorted(&unsorted));
        assert!(is_strictly_sorted::<u64>(&[]));
    }

    #[test]
    fn entry_ordering_follows_key() {
        let a = Entry::new(1u64, 99);
        let b = Entry::new(2u64, 0);
        assert!(a < b);
    }
}
