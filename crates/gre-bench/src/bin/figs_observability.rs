//! Observability end to end: serve the shifting-hotspot scenario through an
//! *instrumented* `PipelineTarget` and show every telemetry surface at work:
//!
//! * a monitor thread samples per-shard `ops_completed` each interval and
//!   prints the resulting load-imbalance series — the hot shard visibly
//!   follows the scripted hotspot drift (asserted, not just printed);
//! * each phase reports its per-interval p50/p99 latency series next to the
//!   completions-per-interval throughput series;
//! * the final metrics snapshot is exported as Prometheus text (run through
//!   the strict validator) and as the repo's JSON dialect (run through the
//!   `perfjson` parser);
//! * the sampled request spans are dumped as Chrome trace-event JSON to
//!   `figs_observability_trace.json` (load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>);
//! * a closing overhead probe runs the read-only trajectory cell with and
//!   without telemetry and prints the throughput ratio (budget: within 3%,
//!   see `docs/OBSERVABILITY.md`).
//!
//! `--quick` shrinks spans for a CI smoke run; `--verbose` adds per-kind
//! latency breakdowns and the full Prometheus exposition.

use gre_bench::registry::IndexBuilder;
use gre_bench::report::{interval_latency_series, interval_series, print_phase_latency};
use gre_bench::trajectory::telemetry_overhead_probe;
use gre_bench::{perfjson, RunOpts};
use gre_datasets::Dataset;
use gre_shard::PipelineTarget;
use gre_telemetry::{
    chrome_trace_json, json_text, prometheus_text, validate_prometheus, CounterId,
};
use gre_workloads::driver::Driver;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// File the Chrome trace-event dump is written to (CI uploads it as an
/// artifact).
const TRACE_OUT: &str = "figs_observability_trace.json";

fn main() {
    let opts = RunOpts::from_env();
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    let spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(opts.shards.clamp(2, 8));
    let phase_ops = if opts.quick { 60_000 } else { 300_000 } as u64;
    let threads = opts.threads.clamp(1, 8);
    let interval = Duration::from_millis(if opts.quick { 20 } else { 100 });
    // The monitor samples finer than the driver's series so even a fast
    // quick run yields several imbalance rows.
    let monitor_interval = interval / 4;
    // Sample densely enough that even the quick run fills the span ring.
    let trace_one_in = if opts.quick { 64 } else { 1024 };

    println!(
        "# Observability: instrumented {} serving shifting-hotspot",
        spec.display_name()
    );

    let hotspot = |start: f64| KeyDist::Hotspot {
        start,
        span: 0.05,
        hot_access: 0.9,
    };
    let mix = Mix::read_mostly(10);
    let scenario = Scenario::new("shifting-hotspot", opts.seed, &keys)
        .phase(Phase::new(
            "hot@0.05",
            mix,
            hotspot(0.05),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ))
        .phase(Phase::new(
            "hot@0.45",
            mix,
            hotspot(0.45),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ))
        .phase(Phase::new(
            "hot@0.85",
            mix,
            hotspot(0.85),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ));

    let mut target = PipelineTarget::new(spec.build_sharded(), threads, 256)
        .instrumented_with(|c| c.trace_sample(trace_one_in));
    let telemetry = Arc::clone(target.telemetry().expect("instrumented"));

    // The monitor thread is the "live dashboard": it only ever reads the
    // shared registry, concurrently with the serving hot path.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let telemetry = Arc::clone(&telemetry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let shards = telemetry.metrics().shard_count();
            let mut last = vec![0u64; shards];
            let mut series: Vec<Vec<u64>> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(monitor_interval);
                let deltas: Vec<u64> = (0..shards)
                    .map(|s| {
                        let total = telemetry.metrics().shard(s).ops_completed();
                        let d = total - last[s];
                        last[s] = total;
                        d
                    })
                    .collect();
                series.push(deltas);
            }
            series
        })
    };

    let result = Driver::new().interval(interval).run(&scenario, &mut target);
    stop.store(true, Ordering::Relaxed);
    let shard_series = monitor.join().expect("monitor thread panicked");

    println!("\n## {} on {}", result.scenario, result.target);
    for phase in &result.phases {
        println!(
            "{:<10} ops={:<8} {:.3} Mop/s  read p99 {:.1}us",
            phase.phase,
            phase.ops(),
            phase.throughput_mops(),
            phase.read_summary().p99_ns as f64 / 1e3,
        );
        println!("  throughput: {}", interval_series(phase, 6));
        println!("  latency:    {}", interval_latency_series(phase, 6));
        if opts.verbose {
            print_phase_latency("    ", phase);
        }
    }
    assert_eq!(result.total_ops(), 3 * phase_ops);

    print_imbalance(&shard_series);

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter(CounterId::OpsCompleted), 3 * phase_ops);
    // In debug builds, cross-check every outcome counter against the
    // driver's typed-response tally (the two classify the same responses
    // from opposite ends of the pipeline).
    debug_assert_eq!(
        {
            let mut tally = gre_workloads::driver::Tally::default();
            for p in &result.phases {
                tally.merge(&p.tally);
            }
            gre_shard::reconcile_tally(&snap, &tally)
        },
        Ok(())
    );

    let prom = prometheus_text(&snap);
    let samples = validate_prometheus(&prom).expect("prometheus exposition must validate");
    let json = json_text(&snap);
    perfjson::Json::parse(&json).expect("json snapshot must parse");
    println!("\n## Snapshot exporters");
    println!(
        "  prometheus: {samples} samples (validated)   json: {} bytes (parsed)",
        json.len()
    );
    if opts.verbose {
        print!("{prom}");
    }

    let spans = telemetry.trace().expect("tracing on").recent();
    assert!(
        !spans.is_empty(),
        "the 1-in-{trace_one_in} sampler must leave spans"
    );
    std::fs::write(TRACE_OUT, chrome_trace_json(&spans)).expect("write trace dump");
    println!(
        "  trace: {} spans sampled 1-in-{trace_one_in} ({} recorded, {} dropped) -> {TRACE_OUT}",
        spans.len(),
        snap.counter(CounterId::TraceSpans),
        snap.counter(CounterId::TraceDropped),
    );

    let probe = telemetry_overhead_probe(&opts, if opts.quick { 1 } else { 3 });
    println!(
        "\n## Overhead probe (read-only pipeline cell, best of runs)\n  \
         base {:.3} Mop/s  instrumented {:.3} Mop/s  ratio {:.3}",
        probe.base_mops,
        probe.instrumented_mops,
        probe.ratio()
    );
}

/// Print the per-interval shard load series and assert the hot shard moved
/// with the scripted drift.
fn print_imbalance(series: &[Vec<u64>]) {
    println!("\n## Per-shard load (ops/interval, monitor thread)");
    let active: Vec<&Vec<u64>> = series
        .iter()
        .filter(|d| d.iter().sum::<u64>() > 0)
        .collect();
    assert!(
        active.len() >= 2,
        "monitor sampled {} active windows; the run must span several",
        active.len()
    );
    let cols = active.len().min(8);
    let stride = active.len().div_ceil(cols);
    for (i, deltas) in active.iter().enumerate().step_by(stride) {
        let total: u64 = deltas.iter().sum();
        let max = *deltas.iter().max().expect("at least one shard");
        let hot = deltas.iter().position(|&d| d == max).expect("max exists");
        let imbalance = max as f64 / (total as f64 / deltas.len() as f64);
        println!(
            "  t{i:<3} hot=shard{hot} imbalance={imbalance:>4.1}x  {}",
            deltas
                .iter()
                .map(|d| format!("{d:>6}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // The hotspot drifts 0.05 -> 0.85 across range shards: the busiest
    // shard of the first active window must differ from the last one's.
    let hottest = |d: &Vec<u64>| {
        let max = *d.iter().max().expect("at least one shard");
        d.iter().position(|&x| x == max).expect("max exists")
    };
    let first = hottest(active.first().expect("non-empty"));
    let last = hottest(active.last().expect("non-empty"));
    println!("  hot shard drifted: {first} -> {last}");
    assert_ne!(
        first, last,
        "the hot shard must follow the scripted hotspot drift"
    );
}
