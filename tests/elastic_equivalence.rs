//! Migration equivalence under live traffic: a seeded scenario drives
//! concurrent mixed read/write traffic through a [`SessionTarget`] while a
//! side thread forces shard splits and merges mid-phase, and the final
//! contents must still match a `BTreeMap` model fed the same op streams —
//! no key lost or duplicated by any drain-and-handoff, and the pipelined
//! sessions' FIFO per-op response accounting intact (zero typed errors).
//!
//! As in the `scenario_driver` equivalence suite, the scenario's writes are
//! commutative by construction (inserts and updates both store the
//! canonical `payload_for(key)`, and no phase removes), so the final state
//! is independent of cross-thread interleaving: any divergence is a real
//! serving- or migration-layer bug, not scheduling noise.

use gre_core::{ConcurrentIndex, Payload, RangeSpec};
use gre_elastic::{ElasticController, ElasticPolicy};
use gre_learned::AlexPlus;
use gre_shard::{Partitioner, SessionTarget, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::driver::ServeTarget;
use gre_workloads::scenario::{phase_stream, KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{Driver, Op};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const OPS_PER_PHASE: u64 = 60_000;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type BackendFactory = fn() -> DynBackend;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn sharded(factory: BackendFactory) -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(SHARDS), |_| factory())
}

/// Two phases of mixed point/range traffic whose hotspot drifts between
/// phases — the same shape the elasticity controller is built to chase.
fn scenario() -> Scenario {
    let keys: Vec<u64> = (1..=6_000u64).map(|i| i * 32).collect();
    Scenario::new("elastic-equivalence", 0xE1A5_71C0, &keys)
        .phase(Phase::new(
            "warm",
            Mix::points(4, 2, 1, 0).with_range(1, 24),
            KeyDist::Hotspot {
                start: 0.1,
                span: 0.15,
                hot_access: 0.85,
            },
            Span::Ops(OPS_PER_PHASE),
            Pacing::ClosedLoop { threads: 3 },
        ))
        .phase(Phase::new(
            "shifted",
            Mix::points(2, 3, 1, 0).with_range(1, 24),
            KeyDist::Hotspot {
                start: 0.65,
                span: 0.15,
                hot_access: 0.85,
            },
            Span::Ops(OPS_PER_PHASE),
            Pacing::ClosedLoop { threads: 3 },
        ))
}

/// Every key/payload pair stored by the target, via a full cross-shard scan.
fn contents(index: &ShardedIndex<u64, DynBackend>, name: &str) -> Vec<(u64, Payload)> {
    let mut out = Vec::new();
    let got = index.range(RangeSpec::new(0, index.len() + 1_000), &mut out);
    assert_eq!(got, index.len(), "{name}: scan covers the whole store");
    out
}

/// The model: apply every generated write, order-free (the scenario's
/// writes commute), replicating the driver's per-thread budget split.
fn model_contents(scenario: &Scenario) -> Vec<(u64, Payload)> {
    let mut model: BTreeMap<u64, Payload> = scenario.bulk.iter().copied().collect();
    let keys = Arc::new(scenario.loaded_keys());
    for (pi, phase) in scenario.phases.iter().enumerate() {
        let Pacing::ClosedLoop { threads } = phase.pacing else {
            panic!("model replay only supports closed-loop op budgets")
        };
        let Span::Ops(total) = phase.span else {
            panic!("model replay only supports op-count spans")
        };
        let base = total / threads as u64;
        let extra = (total % threads as u64) as usize;
        for t in 0..threads {
            let budget = base + u64::from(t < extra);
            let mut stream = phase_stream(scenario, &keys, pi, phase, t, threads);
            for _ in 0..budget {
                match stream.next_op().expect("synthetic streams are infinite") {
                    Op::Insert(k, v) => {
                        model.insert(k, v);
                    }
                    Op::Update(k, v) => {
                        if let Some(slot) = model.get_mut(&k) {
                            *slot = v;
                        }
                    }
                    Op::Remove(_) => panic!("equivalence scenario must not remove"),
                    Op::Get(_) | Op::Range(_) => {}
                }
            }
        }
    }
    model.into_iter().collect()
}

#[test]
fn forced_splits_and_merges_under_live_sessions_preserve_model_equivalence() {
    let scenario = scenario();
    let expected = model_contents(&scenario);

    for (name, factory) in backends() {
        let mut target = SessionTarget::new(sharded(factory), 2, 128, 8);
        // Pre-load so the pipeline exists before the driver starts (the
        // driver's own load call is idempotent) and the controller can be
        // pointed at it.
        target.load(&scenario.bulk);
        let pipeline = target
            .pipeline_handle()
            .expect("loaded target has a pipeline");
        let controller = ElasticController::new(pipeline, ElasticPolicy::default());
        let stop = AtomicBool::new(false);

        let (result, splits, merges) = std::thread::scope(|s| {
            // Churn the topology for the whole run: repeated forced splits
            // spread segments out, forced merges fold them back, each one a
            // full freeze/drain/extract/absorb/swap cycle racing the
            // sessions. Rejections (nothing left to split/merge, or a plan
            // raced a concurrent freeze) are expected and ignored.
            let forcer = s.spawn(|| {
                let mut splits = 0u32;
                let mut merges = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    for shard in 0..SHARDS {
                        if controller.split_hot(shard).is_ok() {
                            splits += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    for shard in 0..SHARDS {
                        if controller.merge_coldest(shard).is_ok() {
                            merges += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                (splits, merges)
            });
            let result = Driver::new().run(&scenario, &mut target);
            stop.store(true, Ordering::Relaxed);
            let (splits, merges) = forcer.join().expect("forcer panicked");
            (result, splits, merges)
        });

        assert_eq!(
            result.total_ops(),
            2 * OPS_PER_PHASE,
            "{name}: every offered op completed"
        );
        for phase in &result.phases {
            assert_eq!(
                phase.tally.errors, 0,
                "{name}/{}: typed errors",
                phase.phase
            );
        }
        assert!(splits >= 1, "{name}: at least one forced split landed");
        assert!(merges >= 1, "{name}: at least one forced merge landed");
        assert_eq!(
            controller.changes().len(),
            (splits + merges) as usize,
            "{name}: every successful change was journalled"
        );
        assert_eq!(
            contents(target.index(), name),
            expected,
            "{name}: final contents match the BTreeMap model"
        );
    }
}
