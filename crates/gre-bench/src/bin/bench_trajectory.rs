//! `bench_trajectory` — emit (or validate) the versioned perf-trajectory
//! report `BENCH_trajectory.json` at the repo root.
//!
//! The sweep drives every concurrent backend of the registry (plus the
//! sharded ALEX+ composite) through the three serving paths — direct,
//! pipeline, session — over read-only, YCSB-A, and read-mostly mixes, and
//! additionally compares scalar per-op lookups against the interleaved
//! `get_batch` path on the read-only mix. See docs/BENCHMARKS.md.
//!
//! ```text
//! bench_trajectory [--keys N] [--threads T] [--seed S] [--shards N]
//!                  [--quick] [--verbose] [--out FILE]
//! bench_trajectory --check FILE     # parse + smoke-check an emitted report
//! ```

use gre_bench::perfjson::{smoke_check, BenchReport};
use gre_bench::trajectory::{run_trajectory, TrajectoryOpts};
use gre_bench::RunOpts;
use std::process::Command;

/// `git rev-parse HEAD`, or `unknown` outside a work tree (the report must
/// always be writable — CI checkouts and plain directories both count).
fn current_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = BenchReport::from_json(&text).map_err(|e| format!("`{path}`: {e}"))?;
    smoke_check(&report).map_err(|e| format!("`{path}`: {e}"))?;
    println!(
        "{path}: ok — schema v{}, commit {}, {} results, {} batched comparisons",
        report.schema_version,
        report.commit,
        report.results.len(),
        report.config.batched_compare.len()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_trajectory.json");
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    out_path = v.clone();
                    i += 1;
                }
            }
            "--check" => {
                if let Some(v) = args.get(i + 1) {
                    check_path = Some(v.clone());
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }

    if let Some(path) = check_path {
        if let Err(e) = check(&path) {
            eprintln!("smoke check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let opts = RunOpts::parse(args);
    let traj = TrajectoryOpts::standard(&opts);
    println!(
        "perf trajectory: {} backends x {} targets x {} mixes, {} keys, {} ops/cell, {} threads (seed {})",
        traj.backends.len(),
        traj.targets.len(),
        traj.mixes.len(),
        traj.keys,
        traj.ops,
        traj.threads,
        traj.seed,
    );

    let report = run_trajectory(&traj, current_commit());

    println!(
        "\n{:<20} {:<15} {:<12} {:>14} {:>10} {:>10}",
        "backend", "target", "mix", "ops/s", "p50 us", "p99 us"
    );
    for r in &report.results {
        println!(
            "{:<20} {:<15} {:<12} {:>14.0} {:>10.2} {:>10.2}",
            r.backend, r.target, r.mix, r.throughput_ops_s, r.p50_us, r.p99_us
        );
    }
    println!();
    for c in &report.config.batched_compare {
        println!(
            "{}: interleaved get_batch {:.0} ops/s vs scalar {:.0} ops/s -> {:.2}x",
            c.backend, c.batched_ops_s, c.scalar_ops_s, c.speedup
        );
    }

    let text = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    // Re-validate what was actually written, so a sweep that produced a
    // degenerate report fails loudly right here, not later in CI.
    if let Err(e) = check(&out_path) {
        eprintln!("smoke check FAILED: {e}");
        std::process::exit(1);
    }
}
