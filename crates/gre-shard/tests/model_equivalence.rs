//! Model-equivalence and concurrency tests for the sharded serving layer.
//!
//! `ShardedIndex` must be observationally identical to a plain `BTreeMap`
//! under any interleaving of get/insert/update/remove/range — for both
//! partitioning schemes and over both a learned (ALEX+) and a traditional
//! (B+treeOLC) backend. The randomized runs are seeded, so failures
//! reproduce deterministically.

use gre_core::{ConcurrentIndex, Payload, RangeSpec};
use gre_learned::AlexPlus;
use gre_shard::{OpBatch, Partitioner, ShardPipeline, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type DynSharded = ShardedIndex<u64, DynBackend>;
type BackendFactory = fn() -> DynBackend;

/// Backends under test: one learned, one traditional (the acceptance bar).
fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn partitioners(shards: usize) -> Vec<Partitioner<u64>> {
    vec![Partitioner::range(shards), Partitioner::hash(shards)]
}

fn build(partitioner: Partitioner<u64>, factory: fn() -> DynBackend) -> DynSharded {
    ShardedIndex::from_factory(partitioner, |_| factory())
}

/// Seeded randomized op soup checked op-by-op against the model.
#[test]
fn sharded_index_matches_btreemap_model() {
    for (name, factory) in backends() {
        for partitioner in partitioners(5) {
            let scheme = partitioner.scheme();
            let mut idx = build(partitioner, factory);
            let mut model: BTreeMap<u64, Payload> = BTreeMap::new();

            // Bulk phase: dense-ish keys so shard boundaries fall mid-data.
            let bulk: Vec<(u64, Payload)> = (0..3_000u64).map(|i| (i * 11, i)).collect();
            idx.bulk_load(&bulk);
            model.extend(bulk.iter().copied());

            let mut rng = StdRng::seed_from_u64(0xd1ce);
            for step in 0..6_000 {
                let key = rng.gen_range(0..40_000u64);
                let ctx = format!("{name}/{scheme} step {step} key {key}");
                match rng.gen_range(0..10u32) {
                    0..=3 => {
                        assert_eq!(idx.get(key), model.get(&key).copied(), "get {ctx}");
                    }
                    4..=6 => {
                        let v = rng.gen::<u64>();
                        let fresh = idx.insert(key, v);
                        assert_eq!(fresh, model.insert(key, v).is_none(), "insert {ctx}");
                    }
                    7 => {
                        let v = rng.gen::<u64>();
                        let hit = idx.update(key, v);
                        let model_hit = model.get_mut(&key).map(|slot| *slot = v).is_some();
                        assert_eq!(hit, model_hit, "update {ctx}");
                    }
                    8 => {
                        assert_eq!(idx.remove(key), model.remove(&key), "remove {ctx}");
                    }
                    _ => {
                        let count = rng.gen_range(1..200usize);
                        let mut got = Vec::new();
                        idx.range(RangeSpec::new(key, count), &mut got);
                        let want: Vec<(u64, Payload)> = model
                            .range(key..)
                            .take(count)
                            .map(|(k, v)| (*k, *v))
                            .collect();
                        assert_eq!(got, want, "range {ctx}");
                    }
                }
            }
            assert_eq!(idx.len(), model.len(), "{name}/{scheme} final len");
        }
    }
}

/// Scans that start in one shard and end in another must stitch seamlessly,
/// for both schemes and both backends.
#[test]
fn cross_shard_range_scans_stitch_in_key_order() {
    for (name, factory) in backends() {
        for partitioner in partitioners(8) {
            let scheme = partitioner.scheme();
            let mut idx = build(partitioner, factory);
            let bulk: Vec<(u64, Payload)> = (0..8_000u64).map(|i| (i * 3, i)).collect();
            idx.bulk_load(&bulk);

            // Whole-domain scan: every key, in order, exactly once.
            let mut out = Vec::new();
            let got = idx.range(RangeSpec::new(0, 8_000), &mut out);
            assert_eq!(got, 8_000, "{name}/{scheme}");
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(out.first().unwrap().0, 0);
            assert_eq!(out.last().unwrap().0, 7_999 * 3);

            // A window straddling the middle of the key space.
            let mut out = Vec::new();
            let got = idx.range(RangeSpec::new(4_000 * 3 + 1, 1_000), &mut out);
            assert_eq!(got, 1_000, "{name}/{scheme}");
            assert_eq!(out.first().unwrap().0, 4_001 * 3);
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }
}

/// The batch pipeline under multi-threaded submission: every submitted write
/// must land exactly once (no lost updates), and per-shard FIFO must make
/// same-key histories deterministic per submitter.
#[test]
fn pipeline_hammer_loses_no_updates() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(8), factory);
        let bulk: Vec<(u64, Payload)> = (0..4_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&bulk);
        let pipeline = ShardPipeline::new(Arc::new(idx), 4);

        let submitters = 4u64;
        let batches = 25u64;
        let per_batch = 40u64;
        std::thread::scope(|s| {
            let pipeline = &pipeline;
            for t in 0..submitters {
                s.spawn(move || {
                    for b in 0..batches {
                        // Disjoint fresh keys per (submitter, batch), plus an
                        // update to a private key whose last batch must win.
                        let base = 1_000_000 + t * 1_000_000 + b * per_batch;
                        let mut ops: Vec<Op> =
                            (0..per_batch).map(|i| Op::Insert(base + i, t)).collect();
                        ops.push(Op::Insert(500_000 + t, b));
                        let r = pipeline.execute(OpBatch::new(ops));
                        assert_eq!(r.new_keys as u64, per_batch + u64::from(b == 0));
                    }
                });
            }
        });

        let index = pipeline.index();
        let expected = 4_000 + submitters * batches * per_batch + submitters;
        assert_eq!(index.len() as u64, expected, "{name}: lost updates");
        for t in 0..submitters {
            for b in (0..batches * per_batch).step_by(37) {
                let k = 1_000_000 + t * 1_000_000 + b;
                assert_eq!(index.get(k), Some(t), "{name} key {k}");
            }
            // Per-submitter FIFO: the last batch's update is the survivor.
            assert_eq!(index.get(500_000 + t), Some(batches - 1), "{name}");
        }
    }
}

/// Sharding must not corrupt merged bookkeeping: len / memory / meta stay
/// consistent with the sum of the parts while shards take writes.
#[test]
fn merged_reporting_stays_consistent_under_writes() {
    let mut idx = build(Partitioner::range(4), || Box::new(AlexPlus::<u64>::new()));
    let bulk: Vec<(u64, Payload)> = (0..2_000u64).map(|i| (i * 5, i)).collect();
    idx.bulk_load(&bulk);
    for i in 0..500u64 {
        idx.insert(i * 5 + 1, i);
    }
    let per_shard: usize = idx.per_shard_lens().iter().sum();
    assert_eq!(per_shard, idx.len());
    assert_eq!(idx.len(), 2_500);
    assert!(idx.memory_usage() > 0);
    let meta = idx.meta();
    assert!(meta.concurrent);
    assert!(meta.learned, "all-ALEX+ composite is a learned index");
}
