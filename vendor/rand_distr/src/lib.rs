//! Offline stand-in for the subset of `rand_distr` 0.4 this workspace uses:
//! [`Normal`], [`LogNormal`] (Box–Muller) and [`Zipf`] (the YCSB zeta-series
//! generator). See `vendor/README.md` for why these are vendored.

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can be sampled given a random source.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box-Muller.
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Normal (Gaussian) distribution, sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, using the
/// closed-form approximation of the YCSB `ZipfianGenerator` (Gray et al.,
/// "Quickly Generating Billion-Record Synthetic Databases"). Rank 1 is the
/// most popular. Samples are returned as `F` (only `f64` is provided).
#[derive(Debug, Clone, Copy)]
pub struct Zipf<F> {
    n: F,
    theta: F,
    alpha: F,
    zetan: F,
    eta: F,
}

impl Zipf<f64> {
    pub fn new(n: u64, s: f64) -> Result<Zipf<f64>, ParamError> {
        if n == 0 {
            return Err(ParamError("zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("zipf requires a finite exponent >= 0"));
        }
        // The zeta-series formulas below divide by (1 - theta); nudge the
        // exponent off the harmonic singularity.
        let theta = if (s - 1.0).abs() < 1e-9 { s + 1e-6 } else { s };
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Ok(Zipf {
            n: n as f64,
            theta,
            alpha,
            zetan,
            eta,
        })
    }
}

/// Truncated zeta series `sum_{i=1..n} 1 / i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    // Cap the exact summation; past a million terms the tail is approximated
    // by the integral of x^-theta, which is accurate to ~1e-6 for the
    // exponents used in benchmarks.
    const EXACT: u64 = 1_000_000;
    let exact_n = n.min(EXACT);
    let mut sum = 0.0;
    for i in 1..=exact_n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > EXACT {
        let a = EXACT as f64;
        let b = n as f64;
        sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
    }
    sum
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // n == 1 leaves eta = -inf (zeta2 == zetan), and a draw of exactly
        // u == 1.0 would then produce a NaN rank; there is only one rank.
        if self.n <= 1.0 {
            return 1.0;
        }
        let u = unit_open(rng);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1.0;
        }
        if self.n >= 2.0 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2.0;
        }
        let rank = 1.0 + self.n * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        rank.clamp(1.0, self.n).floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(1.0, 1.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "log-normal mean should exceed its median");
    }

    #[test]
    fn zipf_ranks_in_bounds_and_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Zipf::new(1_000, 0.99).unwrap();
        let mut counts = vec![0u32; 1_001];
        for _ in 0..100_000 {
            let r = d.sample(&mut rng);
            assert!((1.0..=1_000.0).contains(&r));
            counts[r as usize] += 1;
        }
        // Rank 1 must dominate any mid-table rank by a wide margin.
        assert!(counts[1] > 20 * counts[500].max(1));
        assert!(Zipf::new(0, 0.99).is_err());
    }

    #[test]
    fn zipf_handles_degenerate_and_near_harmonic_exponents() {
        let mut rng = StdRng::seed_from_u64(4);
        let one = Zipf::new(1, 0.5).unwrap();
        for _ in 0..100 {
            assert_eq!(one.sample(&mut rng), 1.0);
        }
        let harmonic = Zipf::new(100, 1.0).unwrap();
        for _ in 0..1_000 {
            let r = harmonic.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
        }
    }
}
