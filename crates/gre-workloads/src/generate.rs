//! Workload builders (§3.3, §4.4, §6.2, §6.3, Appendix E).
//!
//! Each builder takes a dataset's key array and produces a [`Workload`]: the
//! entries to bulk load plus the timed request stream. Key selection follows
//! the paper: keys are randomly shuffled, the first half (or all of them for
//! read-only workloads) is bulk loaded, and the remaining keys feed the
//! insert stream while lookups target already-loaded keys.

use crate::spec::{payload_for, Op, Workload, WriteRatio};
use crate::zipf::ScrambledZipf;
use gre_core::RangeSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// YCSB workload variants (Appendix E). All three use Zipfian key selection
/// with constant 0.99 and touch only pre-loaded keys (updates, no inserts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbVariant {
    /// 50% lookups / 50% updates.
    A,
    /// 95% lookups / 5% updates.
    B,
    /// 100% lookups.
    C,
}

impl YcsbVariant {
    pub fn update_fraction(&self) -> f64 {
        match self {
            YcsbVariant::A => 0.5,
            YcsbVariant::B => 0.05,
            YcsbVariant::C => 0.0,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            YcsbVariant::A => "YCSB-A",
            YcsbVariant::B => "YCSB-B",
            YcsbVariant::C => "YCSB-C",
        }
    }
}

/// Builder for all the workloads of the study.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    /// Number of timed requests per lookup-bearing workload, expressed as a
    /// multiple of the bulk-loaded key count (the paper issues 800M lookups
    /// over 200M keys, i.e. ×4; scaled-down runs usually use ×1).
    pub read_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        WorkloadBuilder {
            read_multiplier: 1.0,
            seed: 0x6e5e,
        }
    }
}

impl WorkloadBuilder {
    pub fn new(seed: u64) -> Self {
        WorkloadBuilder {
            seed,
            ..Default::default()
        }
    }

    /// The five-point insert workload axis of the heatmaps (§3.3).
    ///
    /// * Read-Only: bulk load all keys, issue `read_multiplier × n` lookups.
    /// * Read-Intensive/Balanced/Write-Heavy: bulk load a random half, then a
    ///   mixed stream in which inserts eventually add all remaining keys.
    /// * Write-Only: bulk load half, insert the other half.
    pub fn insert_workload(&self, name: &str, keys: &[u64], ratio: WriteRatio) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1a2b);
        let mut shuffled: Vec<u64> = keys.to_vec();
        shuffled.shuffle(&mut rng);

        let full_name = format!("{name}/{}", ratio.label());
        match ratio {
            WriteRatio::ReadOnly => {
                let bulk = sorted_entries(&shuffled);
                let lookups = (keys.len() as f64 * self.read_multiplier) as usize;
                let ops = (0..lookups)
                    .map(|_| Op::Get(shuffled[rng.gen_range(0..shuffled.len())]))
                    .collect();
                Workload {
                    name: full_name,
                    bulk,
                    ops,
                }
            }
            _ => {
                let half = shuffled.len() / 2;
                let (loaded, to_insert) = shuffled.split_at(half.max(1));
                let bulk = sorted_entries(loaded);
                let write_frac = ratio.write_fraction();
                // The stream ends when all remaining keys have been inserted;
                // lookups are interleaved to reach the requested ratio.
                let insert_count = to_insert.len();
                let total_ops = if write_frac > 0.0 {
                    (insert_count as f64 / write_frac).round() as usize
                } else {
                    insert_count
                };
                let mut ops = Vec::with_capacity(total_ops);
                let mut inserted = 0usize;
                for i in 0..total_ops {
                    let want_insert = ((i + 1) as f64 * write_frac).round() as usize;
                    if inserted < want_insert && inserted < insert_count {
                        let k = to_insert[inserted];
                        ops.push(Op::Insert(k, payload_for(k)));
                        inserted += 1;
                    } else {
                        // Lookups target keys that are certainly present.
                        let k = loaded[rng.gen_range(0..loaded.len())];
                        ops.push(Op::Get(k));
                    }
                }
                // Make sure every remaining key really gets inserted.
                while inserted < insert_count {
                    let k = to_insert[inserted];
                    ops.push(Op::Insert(k, payload_for(k)));
                    inserted += 1;
                }
                Workload {
                    name: full_name,
                    bulk,
                    ops,
                }
            }
        }
    }

    /// Deletion workloads (§4.4): bulk load *all* keys, then issue a
    /// lookup/delete mix until half of the keys have been deleted.
    pub fn delete_workload(&self, name: &str, keys: &[u64], delete_fraction: f64) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x3c4d);
        let mut shuffled: Vec<u64> = keys.to_vec();
        shuffled.shuffle(&mut rng);
        let bulk = sorted_entries(&shuffled);
        let to_delete = shuffled.len() / 2;
        let delete_fraction = delete_fraction.clamp(0.0, 1.0);
        let total_ops = if delete_fraction > 0.0 {
            (to_delete as f64 / delete_fraction).round() as usize
        } else {
            (keys.len() as f64 * self.read_multiplier) as usize
        };
        let mut ops = Vec::with_capacity(total_ops);
        let mut deleted = 0usize;
        for i in 0..total_ops {
            let want_deleted = ((i + 1) as f64 * delete_fraction).round() as usize;
            if deleted < want_deleted && deleted < to_delete {
                ops.push(Op::Remove(shuffled[deleted]));
                deleted += 1;
            } else {
                // Look up keys from the not-yet-deleted tail so lookups hit.
                let k = shuffled[rng.gen_range(to_delete.min(shuffled.len() - 1)..shuffled.len())];
                ops.push(Op::Get(k));
            }
        }
        Workload {
            name: format!("{name}/delete-{:.0}%", delete_fraction * 100.0),
            bulk,
            ops,
        }
    }

    /// Range-scan workload (§6.3): bulk load everything, issue `num_queries`
    /// scans of `scan_size` keys each from random start keys.
    pub fn range_workload(
        &self,
        name: &str,
        keys: &[u64],
        scan_size: usize,
        num_queries: usize,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e6f);
        let bulk = sorted_entries(keys);
        let ops = (0..num_queries)
            .map(|_| {
                Op::Range(RangeSpec::new(
                    keys[rng.gen_range(0..keys.len())],
                    scan_size,
                ))
            })
            .collect();
        Workload {
            name: format!("{name}/scan-{scan_size}"),
            bulk,
            ops,
        }
    }

    /// Distribution-shift workload (§6.2): bulk load keys of dataset `x`,
    /// then run a balanced stream whose inserts come from dataset `y`
    /// (rescaled into `x`'s key domain) and whose lookups target keys of `x`.
    pub fn shift_workload(&self, name: &str, x: &[u64], y: &[u64]) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7a8b);
        let bulk = sorted_entries(x);
        let scaled_y = rescale_to_domain(y, x);
        let total_ops = scaled_y.len() * 2;
        let mut ops = Vec::with_capacity(total_ops);
        let mut it = scaled_y.iter();
        for i in 0..total_ops {
            if i % 2 == 0 {
                if let Some(&k) = it.next() {
                    ops.push(Op::Insert(k, payload_for(k)));
                    continue;
                }
            }
            ops.push(Op::Get(x[rng.gen_range(0..x.len())]));
        }
        Workload {
            name: name.to_string(),
            bulk,
            ops,
        }
    }

    /// YCSB workload (Appendix E): bulk load everything, Zipfian(0.99)
    /// lookups/updates over the loaded keys, no inserts.
    pub fn ycsb(&self, name: &str, keys: &[u64], variant: YcsbVariant, num_ops: usize) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9cad);
        let bulk = sorted_entries(keys);
        let zipf = ScrambledZipf::new(keys.len(), 0.99);
        let update_frac = variant.update_fraction();
        let ops = (0..num_ops)
            .map(|_| {
                let k = keys[zipf.sample(&mut rng)];
                if rng.gen_bool(update_frac) {
                    Op::Update(k, payload_for(k).wrapping_add(1))
                } else {
                    Op::Get(k)
                }
            })
            .collect();
        Workload {
            name: format!("{name}/{}", variant.name()),
            bulk,
            ops,
        }
    }
}

/// Deduplicate, sort and attach payloads to a set of keys for bulk loading.
fn sorted_entries(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<u64> = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.into_iter().map(|k| (k, payload_for(k))).collect()
}

/// Linearly rescale the keys of `src` into the key domain of `dst`,
/// preserving `src`'s distribution shape (used by the shift workload: "the
/// keys of both datasets are scaled to the same domain").
pub fn rescale_to_domain(src: &[u64], dst: &[u64]) -> Vec<u64> {
    if src.is_empty() || dst.is_empty() {
        return Vec::new();
    }
    let (src_min, src_max) = (min_of(src) as f64, max_of(src) as f64);
    let (dst_min, dst_max) = (min_of(dst) as f64, max_of(dst) as f64);
    let src_span = (src_max - src_min).max(1.0);
    let dst_span = (dst_max - dst_min).max(1.0);
    src.iter()
        .map(|&k| {
            let t = (k as f64 - src_min) / src_span;
            (dst_min + t * dst_span) as u64
        })
        .collect()
}

fn min_of(keys: &[u64]) -> u64 {
    *keys.iter().min().expect("non-empty")
}

fn max_of(keys: &[u64]) -> u64 {
    *keys.iter().max().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpKind;

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|i| i * 97).collect()
    }

    #[test]
    fn read_only_bulk_loads_everything() {
        let b = WorkloadBuilder::new(1);
        let w = b.insert_workload("t", &keys(1000), WriteRatio::ReadOnly);
        assert_eq!(w.bulk.len(), 1000);
        assert_eq!(w.ops.len(), 1000);
        assert!(w.ops.iter().all(|o| o.kind() == OpKind::Get));
        // Bulk entries are sorted and unique.
        assert!(w.bulk.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    fn mixed_workloads_hit_the_requested_write_fraction() {
        let b = WorkloadBuilder::new(2);
        for ratio in [
            WriteRatio::ReadIntensive,
            WriteRatio::Balanced,
            WriteRatio::WriteHeavy,
        ] {
            let w = b.insert_workload("t", &keys(2000), ratio);
            assert_eq!(w.bulk.len(), 1000);
            let frac = w.write_fraction();
            assert!(
                (frac - ratio.write_fraction()).abs() < 0.02,
                "{ratio:?}: got {frac}"
            );
            // All remaining keys get inserted exactly once.
            let inserts = w.ops.iter().filter(|o| o.is_write()).count();
            assert_eq!(inserts, 1000);
        }
    }

    #[test]
    fn write_only_inserts_the_other_half() {
        let b = WorkloadBuilder::new(3);
        let w = b.insert_workload("t", &keys(2000), WriteRatio::WriteOnly);
        assert_eq!(w.bulk.len(), 1000);
        assert_eq!(w.ops.len(), 1000);
        assert!(w.ops.iter().all(|o| matches!(o, Op::Insert(_, _))));
        // No inserted key is already in the bulk set.
        let bulk_keys: std::collections::HashSet<u64> = w.bulk.iter().map(|e| e.0).collect();
        for op in &w.ops {
            if let Op::Insert(k, _) = op {
                assert!(!bulk_keys.contains(k));
            }
        }
    }

    #[test]
    fn delete_workload_removes_half() {
        let b = WorkloadBuilder::new(4);
        let w = b.delete_workload("t", &keys(2000), 0.5);
        assert_eq!(w.bulk.len(), 2000);
        let removes = w.ops.iter().filter(|o| matches!(o, Op::Remove(_))).count();
        assert_eq!(removes, 1000);
        assert!((w.write_fraction() - 0.5).abs() < 0.02);
        // Deleted keys are unique.
        let mut deleted: Vec<u64> = w
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Remove(k) => Some(*k),
                _ => None,
            })
            .collect();
        deleted.sort_unstable();
        deleted.dedup();
        assert_eq!(deleted.len(), 1000);
    }

    #[test]
    fn delete_workload_read_only_point() {
        let b = WorkloadBuilder::new(4);
        let w = b.delete_workload("t", &keys(500), 0.0);
        assert!(w.ops.iter().all(|o| !o.is_write()));
    }

    #[test]
    fn range_workload_shape() {
        let b = WorkloadBuilder::new(5);
        let w = b.range_workload("t", &keys(1000), 100, 50);
        assert_eq!(w.ops.len(), 50);
        assert!(w
            .ops
            .iter()
            .all(|o| matches!(o, Op::Range(RangeSpec { count: 100, .. }))));
        assert_eq!(w.bulk.len(), 1000);
    }

    #[test]
    fn shift_workload_rescales_into_target_domain() {
        let b = WorkloadBuilder::new(6);
        let x = keys(1000); // domain ~ [97, 97000]
        let y: Vec<u64> = (1..=500u64).map(|i| i * 1_000_000).collect();
        let w = b.shift_workload("covid->osm", &x, &y);
        let x_max = *x.iter().max().unwrap();
        for op in &w.ops {
            if let Op::Insert(k, _) = op {
                assert!(*k <= x_max + 1);
            }
        }
        let inserts = w.ops.iter().filter(|o| o.is_write()).count();
        assert_eq!(inserts, 500);
        assert!((w.write_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn ycsb_variants_have_expected_update_shares() {
        let b = WorkloadBuilder::new(7);
        let ks = keys(5000);
        let a = b.ycsb("t", &ks, YcsbVariant::A, 10_000);
        let c = b.ycsb("t", &ks, YcsbVariant::C, 10_000);
        assert!((a.write_fraction() - 0.5).abs() < 0.05);
        assert_eq!(c.write_ops(), 0);
        // YCSB touches only loaded keys.
        let loaded: std::collections::HashSet<u64> = ks.iter().copied().collect();
        for op in &a.ops {
            match op {
                Op::Get(k) | Op::Update(k, _) => assert!(loaded.contains(k)),
                _ => panic!("unexpected op in YCSB"),
            }
        }
    }

    #[test]
    fn rescale_handles_empty_inputs() {
        assert!(rescale_to_domain(&[], &[1, 2]).is_empty());
        assert!(rescale_to_domain(&[1, 2], &[]).is_empty());
    }
}
