//! The watermark-bound policy's read-your-writes guarantee, demonstrated
//! deterministically: with a replica's shipper killed, its watermark can
//! never cover a fresh write, so a bounded read must fall back to the
//! primary and observe the write — while a lag-blind round-robin read of
//! the same state serves the stale replica and misses.

use gre_core::{ConcurrentIndex, ReadPolicy};
use gre_durability::util::TempDir;
use gre_learned::AlexPlus;
use gre_replica::ReplicatedTarget;
use gre_shard::{Partitioner, ShardedIndex};
use gre_workloads::driver::{PhaseRecorder, ServeTarget};
use gre_workloads::Op;
use std::time::{Duration, Instant};

type DynBackend = Box<dyn ConcurrentIndex<u64>>;

fn sharded() -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
}

fn target(policy: ReadPolicy, tmp: &TempDir) -> ReplicatedTarget<DynBackend> {
    ReplicatedTarget::new(sharded(), 2, 8, tmp.path(), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
    .with_replicas(1)
    .read_policy(policy)
}

fn recorder() -> PhaseRecorder {
    PhaseRecorder::new(Instant::now(), Duration::from_secs(1))
}

/// Load, kill the only replica's shipper, then write and immediately read
/// the written key through one connection. Returns the Get hit count (1 if
/// the read observed the write).
fn write_then_read(policy: ReadPolicy) -> u64 {
    let tmp = TempDir::new("ryw");
    let mut t = target(policy, &tmp);
    let bulk: Vec<(u64, u64)> = (1..=1_000u64).map(|i| (i * 64, i)).collect();
    t.load(&bulk);
    // Freeze shipping: the replica's watermark can no longer advance, so
    // it will never cover the write below.
    t.kill_replica(0);

    let fresh_key = 33; // not in the bulk load
    let mut rec = recorder();
    {
        let mut conn = t.connect();
        conn.submit(Op::Insert(fresh_key, 7), None, &mut rec);
        conn.flush(&mut rec);
        assert_eq!(rec.tally().new_keys, 1, "write acknowledged");
        conn.submit(Op::Get(fresh_key), None, &mut rec);
        conn.flush(&mut rec);
    }
    assert_eq!(rec.tally().errors, 0);
    rec.tally().hits
}

#[test]
fn watermark_bound_reads_observe_the_sessions_own_writes() {
    assert_eq!(
        write_then_read(ReadPolicy::WatermarkBound),
        1,
        "bounded read fell back to the primary and saw the write"
    );
}

#[test]
fn lag_blind_round_robin_reads_the_stale_replica() {
    // The control: the identical sequence under round-robin serves the
    // frozen replica and misses — the staleness the bound exists to mask.
    assert_eq!(
        write_then_read(ReadPolicy::RoundRobin),
        0,
        "unbounded read served the stale replica"
    );
}

#[test]
fn caught_up_replica_satisfies_the_bound_again() {
    let tmp = TempDir::new("ryw-catchup");
    let mut t = target(ReadPolicy::WatermarkBound, &tmp);
    t.load(&[]);
    let mut rec = recorder();
    {
        let mut conn = t.connect();
        conn.submit(Op::Insert(42, 7), None, &mut rec);
        conn.flush(&mut rec);
    }
    t.quiesce();
    // Shipping caught up: the replica's watermark now covers the session's
    // write, so it is eligible again — and serves the correct value.
    let committed = t.committed();
    assert!(committed.iter().any(|&s| s > 0));
    assert_eq!(t.nodes()[0].watermark().snapshot(), committed);
    {
        let mut conn = t.connect();
        conn.submit(Op::Get(42), None, &mut rec);
        conn.flush(&mut rec);
    }
    assert_eq!(rec.tally().hits, 1);
    assert_eq!(t.nodes()[0].index().len(), t.primary().index().len());
}
