//! Shard scalability of the `gre-shard` serving layer: throughput of
//! `sharded(backend, S)` while sweeping shard count × thread count ×
//! backend on the paper's balanced workload.
//!
//! All three execution paths run the same one-phase replay scenario through
//! the `gre-workloads` scenario `Driver` — only the `ServeTarget` differs:
//!
//! * `direct`  — driver threads call the composite `ConcurrentIndex`
//!   directly (the blanket bare-backend target), one routing decision
//!   per op.
//! * `batched` — `PipelineTarget`: the request stream is buffered into
//!   `BATCH`-op `OpBatch`es and submitted to the `ShardPipeline` worker
//!   pool one batch at a time (submit, then wait), amortizing routing and
//!   thread hand-off with per-shard FIFO execution.
//! * `session` — `SessionTarget`: the same batches submitted through
//!   per-thread `Session`s that keep up to `INFLIGHT` batches in flight
//!   each, overlapping submission with execution.
//!
//! `--shards N` caps the shard-count axis, `--threads T` the thread axis,
//! `--verbose` adds per-kind latency breakdowns per path.

use gre_bench::registry::IndexBuilder;
use gre_bench::report::print_phase_latency;
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_shard::{PipelineTarget, SessionTarget};
use gre_workloads::driver::{Driver, PhaseResult, ServeTarget};
use gre_workloads::scenario::{Pacing, Scenario};
use gre_workloads::{Workload, WorkloadBuilder, WriteRatio};

/// Ops per submitted batch on the batched and session paths.
const BATCH: usize = 1024;

/// In-flight batch window per client session.
const INFLIGHT: usize = 8;

fn main() {
    let opts = RunOpts::from_env();
    let backends: Vec<&str> = if opts.quick {
        vec!["ALEX+", "B+treeOLC"]
    } else {
        vec!["ALEX+", "LIPP+", "XIndex", "B+treeOLC", "ART-OLC"]
    };
    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= opts.shards)
        .collect();
    let mut thread_points: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|t| *t <= opts.threads)
        .collect();
    if thread_points.is_empty() {
        thread_points.push(1);
    }
    let datasets: &[Dataset] = if opts.quick {
        &[Dataset::Covid]
    } else {
        &[Dataset::Covid, Dataset::Osm]
    };

    let builder = WorkloadBuilder::new(opts.seed);
    println!(
        "# Shard scalability (Mop/s), balanced workload; thread axis: {thread_points:?}; \
         batched/session paths use {BATCH}-op batches, sessions keep {INFLIGHT} in flight"
    );
    println!(
        "{:<10} {:<22} {:>6} {:<8}{}",
        "dataset",
        "index",
        "shards",
        "path",
        thread_points
            .iter()
            .map(|t| format!(" {t:>7}T"))
            .collect::<String>()
    );
    for ds in datasets {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::Balanced);
        for backend in &backends {
            for &shards in &shard_counts {
                let spec = IndexBuilder::backend(backend)
                    .expect("registry backend resolves")
                    .shards(shards);
                let name = spec.display_name();
                let mut rows = [
                    (String::from("direct"), String::new()),
                    (String::from("batched"), String::new()),
                    (String::from("session"), String::new()),
                ];
                let mut tails: Vec<(String, PhaseResult)> = Vec::new();
                for &threads in &thread_points {
                    let scenario =
                        Scenario::from_workload(&workload, Pacing::ClosedLoop { threads });
                    // Always the composite — even at 1 shard — so every row
                    // of the sweep measures the same structure and the
                    // shards=1 baseline includes the routing dispatch too.
                    let mut direct = spec.build_sharded();
                    let phase = run_path(&scenario, &mut direct, &workload);
                    rows[0]
                        .1
                        .push_str(&format!(" {:>8.3}", phase.throughput_mops()));
                    if opts.verbose {
                        tails.push((format!("direct/{threads}T"), phase));
                    }

                    let mut batched = PipelineTarget::new(spec.build_sharded(), threads, BATCH);
                    let phase = run_path(&scenario, &mut batched, &workload);
                    rows[1]
                        .1
                        .push_str(&format!(" {:>8.3}", phase.throughput_mops()));
                    if opts.verbose {
                        tails.push((format!("batched/{threads}T"), phase));
                    }

                    let mut session =
                        SessionTarget::new(spec.build_sharded(), threads, BATCH, INFLIGHT);
                    let phase = run_path(&scenario, &mut session, &workload);
                    rows[2]
                        .1
                        .push_str(&format!(" {:>8.3}", phase.throughput_mops()));
                    if opts.verbose {
                        tails.push((format!("session/{threads}T"), phase));
                    }
                }
                for (path, cells) in rows {
                    println!(
                        "{:<10} {:<22} {:>6} {:<8}{cells}",
                        ds.name(),
                        name,
                        shards,
                        path
                    );
                }
                for (label, phase) in &tails {
                    println!("    latency {label}:");
                    print_phase_latency("      ", phase);
                }
            }
        }
    }
}

/// Run the one-phase replay scenario against one target and return the
/// phase measurements, checking no operation was dropped on the way.
fn run_path<T: ServeTarget + ?Sized>(
    scenario: &Scenario,
    target: &mut T,
    workload: &Workload,
) -> PhaseResult {
    let result = Driver::new().run(scenario, target);
    let phase = result
        .phases
        .into_iter()
        .next()
        .expect("one-phase scenario");
    assert_eq!(
        phase.ops() as usize,
        workload.ops.len(),
        "{}: target dropped operations",
        result.target
    );
    phase
}
