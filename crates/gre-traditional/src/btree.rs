//! STX-style in-memory B+-tree.
//!
//! A cache-conscious B+-tree with slotted inner and leaf nodes and leaf
//! side-links (the paper adds side-links to B+TreeOLC for better range-scan
//! performance; we build them in from the start). Nodes live in an arena and
//! are addressed by `u32` ids, which keeps the structure compact and makes
//! end-to-end memory accounting straightforward.

use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};

/// Number of keys per leaf node (STX uses a node size tuned to cache lines;
/// 64 eight-byte keys ≈ one 512-byte block plus payloads).
pub const LEAF_CAPACITY: usize = 64;
/// Number of keys per inner node.
pub const INNER_CAPACITY: usize = 64;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug)]
enum Node<K> {
    Inner {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<Payload>,
        /// Right sibling (side-link) for range scans.
        next: u32,
    },
}

impl<K: Key> Node<K> {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::with_capacity(LEAF_CAPACITY),
            values: Vec::with_capacity(LEAF_CAPACITY),
            next: NO_NODE,
        }
    }

    fn memory(&self) -> usize {
        let base = std::mem::size_of::<Self>();
        match self {
            Node::Inner { keys, children } => {
                base + keys.capacity() * std::mem::size_of::<K>()
                    + children.capacity() * std::mem::size_of::<u32>()
            }
            Node::Leaf { keys, values, .. } => {
                base + keys.capacity() * std::mem::size_of::<K>()
                    + values.capacity() * std::mem::size_of::<Payload>()
            }
        }
    }
}

/// Configuration of the B+-tree (kept for Table 1 reporting symmetry with
/// the learned-index configurations).
#[derive(Debug, Clone, Copy)]
pub struct BPlusTreeConfig {
    pub leaf_capacity: usize,
    pub inner_capacity: usize,
}

impl Default for BPlusTreeConfig {
    fn default() -> Self {
        BPlusTreeConfig {
            leaf_capacity: LEAF_CAPACITY,
            inner_capacity: INNER_CAPACITY,
        }
    }
}

/// An STX-style B+-tree.
#[derive(Debug)]
pub struct BPlusTree<K> {
    nodes: Vec<Node<K>>,
    root: u32,
    len: usize,
    height: usize,
    config: BPlusTreeConfig,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for BPlusTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> BPlusTree<K> {
    /// Create an empty tree with the default node sizes.
    pub fn new() -> Self {
        Self::with_config(BPlusTreeConfig::default())
    }

    /// Create an empty tree with explicit node sizes.
    pub fn with_config(config: BPlusTreeConfig) -> Self {
        BPlusTree {
            nodes: vec![Node::new_leaf()],
            root: 0,
            len: 0,
            height: 1,
            config,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    /// Tree height (number of levels, leaves included).
    pub fn height(&self) -> usize {
        self.height
    }

    fn alloc(&mut self, node: Node<K>) -> u32 {
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    /// Descend to the leaf that should hold `key`, returning the leaf id and
    /// the number of nodes traversed.
    fn find_leaf(&self, key: K) -> (u32, u64) {
        let mut id = self.root;
        let mut traversed = 1;
        loop {
            match &self.nodes[id as usize] {
                Node::Inner { keys, children } => {
                    let slot = keys.partition_point(|k| *k <= key);
                    id = children[slot];
                    traversed += 1;
                }
                Node::Leaf { .. } => return (id, traversed),
            }
        }
    }

    /// Descend recording the path of (inner node id, child slot) pairs.
    fn find_leaf_with_path(&self, key: K) -> (u32, Vec<(u32, usize)>) {
        let mut id = self.root;
        let mut path = Vec::with_capacity(self.height);
        loop {
            match &self.nodes[id as usize] {
                Node::Inner { keys, children } => {
                    let slot = keys.partition_point(|k| *k <= key);
                    path.push((id, slot));
                    id = children[slot];
                }
                Node::Leaf { .. } => return (id, path),
            }
        }
    }

    /// Split a full leaf, returning `(separator, new_leaf_id)`.
    fn split_leaf(&mut self, leaf_id: u32) -> (K, u32) {
        let (right_keys, right_values, old_next) = {
            let Node::Leaf { keys, values, next } = &mut self.nodes[leaf_id as usize] else {
                unreachable!("split_leaf on inner node")
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), values.split_off(mid), *next)
        };
        let separator = right_keys[0];
        let new_id = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            next: old_next,
        });
        let Node::Leaf { next, .. } = &mut self.nodes[leaf_id as usize] else {
            unreachable!()
        };
        *next = new_id;
        (separator, new_id)
    }

    /// Split a full inner node, returning `(separator, new_inner_id)`.
    fn split_inner(&mut self, inner_id: u32) -> (K, u32) {
        let (separator, right_keys, right_children) = {
            let Node::Inner { keys, children } = &mut self.nodes[inner_id as usize] else {
                unreachable!("split_inner on leaf")
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid + 1);
            let separator = keys.pop().expect("non-empty inner split");
            let right_children = children.split_off(mid + 1);
            (separator, right_keys, right_children)
        };
        let new_id = self.alloc(Node::Inner {
            keys: right_keys,
            children: right_children,
        });
        (separator, new_id)
    }

    /// Propagate a split upwards along `path`.
    fn insert_into_parents(&mut self, mut path: Vec<(u32, usize)>, mut sep: K, mut right: u32) {
        loop {
            match path.pop() {
                Some((parent_id, slot)) => {
                    {
                        let Node::Inner { keys, children } = &mut self.nodes[parent_id as usize]
                        else {
                            unreachable!()
                        };
                        keys.insert(slot, sep);
                        children.insert(slot + 1, right);
                    }
                    let full = match &self.nodes[parent_id as usize] {
                        Node::Inner { keys, .. } => keys.len() > self.config.inner_capacity,
                        _ => false,
                    };
                    if !full {
                        return;
                    }
                    let (new_sep, new_right) = self.split_inner(parent_id);
                    self.counters.nodes_created += 1;
                    sep = new_sep;
                    right = new_right;
                }
                None => {
                    // Root split: create a new root.
                    let old_root = self.root;
                    let new_root = self.alloc(Node::Inner {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    });
                    self.root = new_root;
                    self.height += 1;
                    self.counters.nodes_created += 1;
                    return;
                }
            }
        }
    }

    /// Iterate entries in ascending key order starting from `start`,
    /// following leaf side-links.
    fn scan_from(&self, start: K, count: usize, out: &mut Vec<(K, Payload)>) -> usize {
        let (mut leaf_id, _) = self.find_leaf(start);
        let before = out.len();
        while leaf_id != NO_NODE && out.len() - before < count {
            let Node::Leaf { keys, values, next } = &self.nodes[leaf_id as usize] else {
                unreachable!()
            };
            let from = keys.partition_point(|k| *k < start);
            for i in from..keys.len() {
                if out.len() - before >= count {
                    break;
                }
                out.push((keys[i], values[i]));
            }
            leaf_id = *next;
        }
        out.len() - before
    }
}

impl<K: Key> Index<K> for BPlusTree<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        // Rebuild from scratch: pack leaves to ~90% fill, then build the
        // inner levels bottom-up (the standard bulk-loading strategy of STX).
        self.nodes.clear();
        self.len = entries.len();
        if entries.is_empty() {
            self.nodes.push(Node::new_leaf());
            self.root = 0;
            self.height = 1;
            return;
        }
        let fill = (self.config.leaf_capacity * 9 / 10).max(1);
        let mut level: Vec<(K, u32)> = Vec::new();
        let mut chunk_start = 0usize;
        let mut prev_leaf: u32 = NO_NODE;
        while chunk_start < entries.len() {
            let chunk_end = (chunk_start + fill).min(entries.len());
            let chunk = &entries[chunk_start..chunk_end];
            let id = self.alloc(Node::Leaf {
                keys: chunk.iter().map(|e| e.0).collect(),
                values: chunk.iter().map(|e| e.1).collect(),
                next: NO_NODE,
            });
            if prev_leaf != NO_NODE {
                let Node::Leaf { next, .. } = &mut self.nodes[prev_leaf as usize] else {
                    unreachable!()
                };
                *next = id;
            }
            prev_leaf = id;
            level.push((chunk[0].0, id));
            chunk_start = chunk_end;
        }
        // Build inner levels until a single root remains.
        self.height = 1;
        while level.len() > 1 {
            let fanout = (self.config.inner_capacity * 9 / 10).max(2);
            let mut next_level = Vec::new();
            for group in level.chunks(fanout) {
                let first_key = group[0].0;
                let keys: Vec<K> = group.iter().skip(1).map(|(k, _)| *k).collect();
                let children: Vec<u32> = group.iter().map(|(_, id)| *id).collect();
                let id = self.alloc(Node::Inner { keys, children });
                next_level.push((first_key, id));
            }
            level = next_level;
            self.height += 1;
        }
        self.root = level[0].1;
    }

    fn get(&self, key: K) -> Option<Payload> {
        let (leaf_id, _) = self.find_leaf(key);
        let Node::Leaf { keys, values, .. } = &self.nodes[leaf_id as usize] else {
            unreachable!()
        };
        keys.binary_search(&key).ok().map(|i| values[i])
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let mut stats = InsertStats::default();
        let (leaf_id, path) = self.find_leaf_with_path(key);
        stats.nodes_traversed = path.len() as u64 + 1;

        let (inserted, shifted, needs_split) = {
            let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf_id as usize] else {
                unreachable!()
            };
            match keys.binary_search(&key) {
                Ok(i) => {
                    values[i] = value;
                    (false, 0u64, false)
                }
                Err(i) => {
                    let shifted = (keys.len() - i) as u64;
                    keys.insert(i, key);
                    values.insert(i, value);
                    (true, shifted, keys.len() > self.config.leaf_capacity)
                }
            }
        };
        stats.keys_shifted = shifted;
        if inserted {
            self.len += 1;
        }
        if needs_split {
            stats.triggered_smo = true;
            stats.nodes_created += 1;
            let (sep, right) = self.split_leaf(leaf_id);
            self.insert_into_parents(path, sep, right);
        }
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let (leaf_id, traversed) = self.find_leaf(key);
        self.counters.record_remove(traversed);
        let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf_id as usize] else {
            unreachable!()
        };
        match keys.binary_search(&key) {
            Ok(i) => {
                keys.remove(i);
                let v = values.remove(i);
                self.len -= 1;
                Some(v)
            }
            Err(_) => None,
        }
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        self.scan_from(spec.start, spec.count, out);
        // Honor the optional inclusive end bound: the side-link scan is
        // count-limited, so clip the (sorted) tail that overshot the window.
        if spec.end.is_some() {
            while out.len() > before && out.last().is_some_and(|e| !spec.admits(e.0)) {
                out.pop();
            }
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.iter().map(Node::memory).sum::<usize>()
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "B+tree",
            learned: false,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 10, i)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut t = BPlusTree::new();
        t.bulk_load(&entries(10_000));
        assert_eq!(t.len(), 10_000);
        assert!(t.height() > 1);
        for i in (0..10_000).step_by(37) {
            assert_eq!(t.get(i * 10), Some(i));
            assert_eq!(t.get(i * 10 + 5), None);
        }
    }

    #[test]
    fn insert_then_lookup_everything() {
        let mut t = BPlusTree::new();
        // Insert in a scrambled order.
        let mut keys: Vec<u64> = (0..5_000).map(|i| i * 7 + 1).collect();
        keys.reverse();
        for (i, &k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64));
        }
        assert_eq!(t.len(), 5_000);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "key {k}");
        }
        // Updating an existing key returns false and changes the value.
        assert!(!t.insert(keys[0], 999));
        assert_eq!(t.get(keys[0]), Some(999));
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t = BPlusTree::new();
        t.bulk_load(&entries(2_000));
        for i in 0..1_000u64 {
            assert_eq!(t.remove(i * 20), Some(i * 2));
        }
        assert_eq!(t.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(t.get(i * 20), None);
            assert_eq!(t.get(i * 20 + 10), Some(i * 2 + 1));
        }
        assert_eq!(t.remove(5), None);
        // Re-insert the deleted keys.
        for i in 0..1_000u64 {
            assert!(t.insert(i * 20, 7));
        }
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn range_scan_follows_side_links() {
        let mut t = BPlusTree::new();
        t.bulk_load(&entries(3_000));
        let mut out = Vec::new();
        let n = t.range(RangeSpec::new(995, 200), &mut out);
        assert_eq!(n, 200);
        assert_eq!(out[0].0, 1000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Scan starting beyond the last key returns nothing.
        out.clear();
        assert_eq!(t.range(RangeSpec::new(1_000_000, 10), &mut out), 0);
        // Scan from before the first key returns the first keys.
        out.clear();
        assert_eq!(t.range(RangeSpec::new(0, 5), &mut out), 5);
        assert_eq!(out[0].0, 0);
    }

    #[test]
    fn bounded_range_scan_respects_the_end_key() {
        let mut t = BPlusTree::new();
        t.bulk_load(&entries(1_000));
        let stride = {
            let mut probe = Vec::new();
            t.range(RangeSpec::new(0, 2), &mut probe);
            probe[1].0 - probe[0].0
        };
        let mut out = Vec::new();
        // End bound clips before the count limit: [10*stride, 14*stride]
        // holds exactly 5 keys.
        let (lo, hi) = (10 * stride, 14 * stride);
        assert_eq!(t.range(RangeSpec::bounded(lo, hi, 50), &mut out), 5);
        assert_eq!(out.first().unwrap().0, lo);
        assert_eq!(out.last().unwrap().0, hi);
        // Count limits a wide window.
        out.clear();
        assert_eq!(t.range(RangeSpec::bounded(0, 999 * stride, 3), &mut out), 3);
        // Window with no keys in it.
        out.clear();
        assert_eq!(
            t.range(RangeSpec::bounded(lo + 1, lo + stride - 1, 10), &mut out),
            0
        );
    }

    #[test]
    fn mixed_operations_match_btreemap_model() {
        let mut t = BPlusTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x12345;
        for i in 0..20_000u64 {
            // xorshift pseudo-random ops
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 4096;
            match x % 4 {
                0 | 1 => {
                    assert_eq!(t.insert(key, i), model.insert(key, i).is_none());
                }
                2 => {
                    assert_eq!(t.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(key), model.get(&key).copied());
                }
            }
        }
        assert_eq!(t.len(), model.len());
        let mut out = Vec::new();
        t.range(RangeSpec::new(0, usize::MAX), &mut out);
        let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn stats_and_memory_reporting() {
        let mut t = BPlusTree::new();
        t.bulk_load(&entries(1_000));
        let before = t.memory_usage();
        for i in 0..1_000u64 {
            t.insert(i * 10 + 5, i);
        }
        assert!(t.memory_usage() > before);
        let stats = t.stats();
        assert_eq!(stats.counters.inserts, 1_000);
        assert!(stats.counters.smo_count > 0);
        assert!(t.last_insert_stats().nodes_traversed >= 1);
        t.reset_stats();
        assert_eq!(t.stats().counters.inserts, 0);
        assert_eq!(t.meta().name, "B+tree");
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t: BPlusTree<u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(5), None);
        assert_eq!(t.remove(5), None);
        let mut out = Vec::new();
        assert_eq!(t.range(RangeSpec::new(0, 10), &mut out), 0);
        t.bulk_load(&[]);
        assert!(t.is_empty());
        assert!(t.insert(1, 1));
        assert_eq!(t.get(1), Some(1));
    }
}
