//! # gre-pla
//!
//! The data-hardness machinery of the paper (§3.2, §7, Appendix C/D):
//!
//! * [`model`] — linear models mapping keys to positions.
//! * [`pla`] — streaming ε-approximate piecewise linear approximation, the
//!   linear-time segmentation algorithm used both to *measure* hardness and
//!   by the PGM-Index to *build* its levels.
//! * [`hardness`] — the two-dimensional hardness metric
//!   `H_PLA(ε=32)` (local) / `H_PLA(ε=4096)` (global), plus the
//!   single-regression MSE alternative the appendix compares against.
//! * [`synth`] — the synthetic hardness-driven data generator of §7
//!   (per-segment random linear models, corner datasets of Figure 15).

pub mod hardness;
pub mod model;
pub mod pla;
pub mod synth;

pub use hardness::{DataHardness, HardnessConfig};
pub use model::LinearModel;
pub use pla::{optimal_pla, PlaSegment};
pub use synth::{SynthCorner, SyntheticSpec};
