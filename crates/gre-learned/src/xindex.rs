//! XIndex — a concurrent learned index with delta-merge (Tang et al., PPoPP'20).
//!
//! XIndex partitions the key space into *groups*, each holding a sorted main
//! array addressed by a linear model (error-bounded last-mile search) plus a
//! per-group *delta* buffer that absorbs inserts (§2.2). When a delta grows
//! past its budget the group is compacted: delta and main array are merged
//! and the model retrained (two-phase merge; the original uses a background
//! thread and RCU, which our inline compaction replaces — the latency spike
//! of a merge lands on the triggering insert, reproducing the tail-latency
//! behaviour of Figure 11 without background threads). Each group is guarded
//! by a reader-writer lock; a top-level router (model + group boundaries)
//! directs operations to groups.

use gre_core::{ConcurrentIndex, IndexMeta, Key, Payload, RangeSpec};
use gre_pla::LinearModel;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Configuration (Table 1: error bound 32, delta size 256, up to 4 models per
/// group — we use one model per group and split groups instead, which is the
/// degenerate case of the same design).
#[derive(Debug, Clone, Copy)]
pub struct XIndexConfig {
    /// Last-mile search error budget.
    pub error_bound: usize,
    /// Delta entries per group before compaction.
    pub delta_size: usize,
    /// Target number of keys per group.
    pub group_size: usize,
}

impl Default for XIndexConfig {
    fn default() -> Self {
        XIndexConfig {
            error_bound: 32,
            delta_size: 256,
            group_size: 8_192,
        }
    }
}

#[derive(Debug)]
struct Group<K: Key> {
    model: LinearModel,
    keys: Vec<K>,
    values: Vec<Payload>,
    /// Delta buffer for new inserts (the original backs this with Masstree;
    /// an ordered map preserves the same semantics).
    delta: BTreeMap<K, Payload>,
    /// Tombstones for keys deleted from the main array without compaction.
    deleted: BTreeMap<K, ()>,
}

impl<K: Key> Group<K> {
    fn build(keys: Vec<K>, values: Vec<Payload>) -> Self {
        let model = LinearModel::fit_keys(&keys);
        Group {
            model,
            keys,
            values,
            delta: BTreeMap::new(),
            deleted: BTreeMap::new(),
        }
    }

    /// Model-predicted, error-bounded lower bound in the main array.
    fn main_lower_bound(&self, key: K, error_bound: usize) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        let pred = self.model.predict_clamped(key, n);
        let lo = pred.saturating_sub(error_bound);
        let hi = (pred + error_bound + 1).min(n);
        let window = &self.keys[lo..hi];
        let local = window.partition_point(|k| *k < key);
        let pos = lo + local;
        // Fall back to a full binary search if the error bound was exceeded
        // (happens after inserts skew the distribution, until compaction).
        if (pos == hi && hi < n && self.keys[hi] < key)
            || (pos == lo && lo > 0 && self.keys[lo - 1] >= key)
        {
            self.keys.partition_point(|k| *k < key)
        } else {
            pos
        }
    }

    fn get(&self, key: K, error_bound: usize) -> Option<Payload> {
        if let Some(v) = self.delta.get(&key) {
            return Some(*v);
        }
        if self.deleted.contains_key(&key) {
            return None;
        }
        let pos = self.main_lower_bound(key, error_bound);
        (pos < self.keys.len() && self.keys[pos] == key).then(|| self.values[pos])
    }

    /// Merge delta and tombstones into the main array and retrain the model
    /// (the compaction phase of the two-phase merge).
    fn compact(&mut self) {
        if self.delta.is_empty() && self.deleted.is_empty() {
            return;
        }
        let mut merged_keys = Vec::with_capacity(self.keys.len() + self.delta.len());
        let mut merged_values = Vec::with_capacity(merged_keys.capacity());
        let mut delta_iter = self.delta.iter().peekable();
        for (i, k) in self.keys.iter().enumerate() {
            while let Some((&dk, &dv)) = delta_iter.peek() {
                if dk < *k {
                    merged_keys.push(dk);
                    merged_values.push(dv);
                    delta_iter.next();
                } else {
                    break;
                }
            }
            if self.deleted.contains_key(k) {
                continue;
            }
            if let Some((&dk, &dv)) = delta_iter.peek() {
                if dk == *k {
                    merged_keys.push(dk);
                    merged_values.push(dv);
                    delta_iter.next();
                    continue;
                }
            }
            merged_keys.push(*k);
            merged_values.push(self.values[i]);
        }
        for (&dk, &dv) in delta_iter {
            merged_keys.push(dk);
            merged_values.push(dv);
        }
        self.model = LinearModel::fit_keys(&merged_keys);
        self.keys = merged_keys;
        self.values = merged_values;
        self.delta.clear();
        self.deleted.clear();
    }

    fn live_count(&self) -> usize {
        let mut count = self.keys.len() + self.delta.len() - self.deleted.len();
        // Keys present in both main and delta were counted twice.
        for k in self.delta.keys() {
            if self.keys.binary_search(k).is_ok() {
                count -= 1;
            }
        }
        count
    }

    fn memory(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<K>()
            + self.values.capacity() * std::mem::size_of::<Payload>()
            + (self.delta.len() + self.deleted.len()) * 64
    }
}

/// The XIndex structure: router + groups.
pub struct XIndex<K: Key> {
    config: XIndexConfig,
    router: RwLock<Router<K>>,
    groups: Vec<RwLock<Group<K>>>,
}

#[derive(Debug)]
struct Router<K> {
    model: LinearModel,
    /// First key of each group.
    boundaries: Vec<K>,
}

impl<K: Key> Default for XIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> XIndex<K> {
    pub fn new() -> Self {
        Self::with_config(XIndexConfig::default())
    }

    pub fn with_config(config: XIndexConfig) -> Self {
        XIndex {
            config,
            router: RwLock::new(Router {
                model: LinearModel::default(),
                boundaries: vec![K::MIN],
            }),
            groups: vec![RwLock::new(Group::build(Vec::new(), Vec::new()))],
        }
    }

    pub fn config(&self) -> XIndexConfig {
        self.config
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Route a key to its group.
    fn locate(&self, key: K) -> usize {
        let router = self.router.read();
        let n = self.groups.len();
        let mut idx = router.model.predict_clamped(key, n);
        while idx + 1 < n && router.boundaries[idx + 1] <= key {
            idx += 1;
        }
        while idx > 0 && router.boundaries[idx] > key {
            idx -= 1;
        }
        idx
    }
}

impl<K: Key> ConcurrentIndex<K> for XIndex<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let group_size = self.config.group_size.max(64);
        let mut groups = Vec::new();
        let mut boundaries = Vec::new();
        if entries.is_empty() {
            groups.push(RwLock::new(Group::build(Vec::new(), Vec::new())));
            boundaries.push(K::MIN);
        } else {
            for chunk in entries.chunks(group_size) {
                boundaries.push(chunk[0].0);
                groups.push(RwLock::new(Group::build(
                    chunk.iter().map(|e| e.0).collect(),
                    chunk.iter().map(|e| e.1).collect(),
                )));
            }
            boundaries[0] = K::MIN;
        }
        let model = LinearModel::fit_points(
            boundaries
                .iter()
                .enumerate()
                .map(|(i, k)| (k.to_model_input(), i as f64)),
        );
        self.groups = groups;
        *self.router.get_mut() = Router { model, boundaries };
    }

    fn get(&self, key: K) -> Option<Payload> {
        let idx = self.locate(key);
        self.groups[idx].read().get(key, self.config.error_bound)
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        let existed = group.get(key, self.config.error_bound).is_some();
        group.deleted.remove(&key);
        // Updates of keys in the main array are done in place; new keys go to
        // the delta.
        let pos = group.main_lower_bound(key, self.config.error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            group.values[pos] = value;
        } else {
            group.delta.insert(key, value);
            if group.delta.len() >= self.config.delta_size {
                group.compact();
            }
        }
        !existed
    }

    /// One group write lock covers the presence check and the payload write
    /// (the trait's atomicity contract). Unlike `insert`, an absent key is
    /// left absent.
    fn update(&self, key: K, value: Payload) -> bool {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        if let Some(slot) = group.delta.get_mut(&key) {
            *slot = value;
            return true;
        }
        if group.deleted.contains_key(&key) {
            return false;
        }
        let pos = group.main_lower_bound(key, self.config.error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            group.values[pos] = value;
            true
        } else {
            false
        }
    }

    fn remove(&self, key: K) -> Option<Payload> {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        if let Some(v) = group.delta.remove(&key) {
            return Some(v);
        }
        if group.deleted.contains_key(&key) {
            return None;
        }
        let pos = group.main_lower_bound(key, self.config.error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            let v = group.values[pos];
            group.deleted.insert(key, ());
            Some(v)
        } else {
            None
        }
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let mut idx = self.locate(spec.start);
        while idx < self.groups.len() && out.len() - before < spec.count {
            let group = self.groups[idx].read();
            // Merge the main array and delta on the fly.
            let mut main_pos = group.main_lower_bound(spec.start, self.config.error_bound);
            let mut delta_iter = group.delta.range(spec.start..).peekable();
            while out.len() - before < spec.count {
                let main_entry = loop {
                    if main_pos >= group.keys.len() {
                        break None;
                    }
                    let k = group.keys[main_pos];
                    if group.deleted.contains_key(&k) || group.delta.contains_key(&k) {
                        main_pos += 1;
                        continue;
                    }
                    break Some((k, group.values[main_pos]));
                };
                let delta_entry = delta_iter.peek().map(|(k, v)| (**k, **v));
                match (main_entry, delta_entry) {
                    (None, None) => break,
                    (Some((mk, mv)), None) => {
                        out.push((mk, mv));
                        main_pos += 1;
                    }
                    (None, Some((dk, dv))) => {
                        out.push((dk, dv));
                        delta_iter.next();
                    }
                    (Some((mk, mv)), Some((dk, dv))) => {
                        if mk < dk {
                            out.push((mk, mv));
                            main_pos += 1;
                        } else {
                            out.push((dk, dv));
                            delta_iter.next();
                        }
                    }
                }
            }
            idx += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.groups.iter().map(|g| g.read().live_count()).sum()
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.groups.iter().map(|g| g.read().memory()).sum::<usize>()
            + self.router.read().boundaries.capacity() * std::mem::size_of::<K>()
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "XIndex",
            learned: true,
            concurrent: true,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 9 + 2, i)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut x = XIndex::new();
        ConcurrentIndex::bulk_load(&mut x, &entries(30_000));
        assert_eq!(x.len(), 30_000);
        assert!(x.group_count() > 1);
        for i in (0..30_000).step_by(307) {
            assert_eq!(x.get(i * 9 + 2), Some(i));
            assert_eq!(x.get(i * 9 + 3), None);
        }
    }

    #[test]
    fn inserts_go_to_delta_then_compact() {
        let mut x = XIndex::with_config(XIndexConfig {
            delta_size: 64,
            ..Default::default()
        });
        ConcurrentIndex::bulk_load(&mut x, &entries(5_000));
        for i in 0..5_000u64 {
            assert!(x.insert(i * 9 + 3, i + 70_000));
        }
        assert_eq!(x.len(), 10_000);
        for i in (0..5_000).step_by(101) {
            assert_eq!(x.get(i * 9 + 2), Some(i));
            assert_eq!(x.get(i * 9 + 3), Some(i + 70_000));
        }
        // Update existing keys in place.
        assert!(!x.insert(2, 42));
        assert_eq!(x.get(2), Some(42));
    }

    #[test]
    fn removes_with_tombstones() {
        let mut x = XIndex::new();
        ConcurrentIndex::bulk_load(&mut x, &entries(2_000));
        for i in 0..1_000u64 {
            assert_eq!(x.remove(i * 9 + 2), Some(i));
            assert_eq!(x.get(i * 9 + 2), None);
        }
        assert_eq!(x.len(), 1_000);
        assert_eq!(x.remove(3), None);
        // Reinsert a removed key.
        assert!(x.insert(2, 5));
        assert_eq!(x.get(2), Some(5));
    }

    #[test]
    fn range_merges_delta_and_main() {
        let mut x = XIndex::new();
        ConcurrentIndex::bulk_load(&mut x, &entries(2_000));
        for i in 0..100u64 {
            x.insert(i * 9 + 3, 1_000_000 + i);
        }
        let mut out = Vec::new();
        let got = x.range(RangeSpec::new(0, 300), &mut out);
        assert_eq!(got, 300);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Both main-array keys and delta keys appear.
        assert!(out.iter().any(|e| e.1 >= 1_000_000));
        assert!(out.iter().any(|e| e.1 < 1_000_000));
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let mut x = XIndex::new();
        ConcurrentIndex::bulk_load(&mut x, &entries(10_000));
        let x = Arc::new(x);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let x = Arc::clone(&x);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = 1_000_000 + t * 1_000_000 + i;
                        x.insert(key, i);
                        assert_eq!(x.get(key), Some(i));
                        x.get((i % 10_000) * 9 + 2);
                    }
                });
            }
        });
        assert_eq!(x.len(), 10_000 + 4 * 2_000);
        assert_eq!(x.meta().name, "XIndex");
    }

    #[test]
    fn empty_behaviour() {
        let x: XIndex<u64> = XIndex::new();
        assert_eq!(x.get(1), None);
        assert_eq!(x.remove(1), None);
        assert!(x.insert(1, 1));
        assert_eq!(x.get(1), Some(1));
        assert_eq!(x.len(), 1);
    }
}
