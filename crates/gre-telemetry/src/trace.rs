//! `TraceRing`: a fixed-capacity, lock-free ring buffer of operation spans.
//!
//! The serving path records one span per *sampled* operation (see
//! [`Sampler`]), covering submit → route → enqueue → execute → respond.
//! Writers claim slots with one `fetch_add` on a monotone head counter;
//! each slot carries a seqlock-style sequence word so readers detect and
//! discard torn reads instead of blocking writers. Slot payloads are stored
//! as plain atomic words (no `unsafe`), so a torn read is merely stale data,
//! never undefined behaviour.
//!
//! Capacity is rounded up to a power of two so slot selection is a mask.
//! When the ring wraps, the newest spans overwrite the oldest — exactly the
//! "recent window" semantics a flight recorder wants. [`TraceRing::recent`]
//! returns the currently-consistent spans; [`chrome_trace_json`] renders
//! them as Chrome trace-event JSON (`chrome://tracing` / Perfetto).

use gre_core::ops::RequestKind;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One sampled operation's lifecycle timestamps (nanoseconds since the
/// owning [`Telemetry`](crate::Telemetry) epoch) plus identity fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sample ticket of the traced op (monotone across the run).
    pub op_id: u64,
    /// Request kind of the traced op.
    pub kind: RequestKind,
    /// Shard the op was routed to.
    pub shard: u32,
    /// Operations in the shard-local sub-batch that carried this op.
    pub batch_ops: u32,
    /// Batch handed to `submit`/`try_submit`.
    pub submit_ns: u64,
    /// Batch split into shard-local sub-batches.
    pub route_ns: u64,
    /// Sub-batch enqueued on the shard queue.
    pub enqueue_ns: u64,
    /// Worker dequeued the sub-batch and began executing.
    pub execute_ns: u64,
    /// Sub-batch execution finished.
    pub complete_ns: u64,
    /// Responses written back and waiters notified.
    pub respond_ns: u64,
}

impl Default for SpanRecord {
    fn default() -> Self {
        SpanRecord {
            op_id: 0,
            kind: RequestKind::Get,
            shard: 0,
            batch_ops: 0,
            submit_ns: 0,
            route_ns: 0,
            enqueue_ns: 0,
            execute_ns: 0,
            complete_ns: 0,
            respond_ns: 0,
        }
    }
}

/// Words per encoded span: id word + packed identity word + 6 timestamps.
const SPAN_WORDS: usize = 8;

impl SpanRecord {
    fn encode(&self) -> [u64; SPAN_WORDS] {
        let packed = (self.kind.index() as u64) << 48
            | (self.shard as u64 & 0xFFFF) << 32
            | self.batch_ops as u64;
        [
            self.op_id,
            packed,
            self.submit_ns,
            self.route_ns,
            self.enqueue_ns,
            self.execute_ns,
            self.complete_ns,
            self.respond_ns,
        ]
    }

    fn decode(w: [u64; SPAN_WORDS]) -> SpanRecord {
        let kind_idx = ((w[1] >> 48) & 0xFF) as usize;
        SpanRecord {
            op_id: w[0],
            kind: RequestKind::ALL[kind_idx.min(RequestKind::COUNT - 1)],
            shard: ((w[1] >> 32) & 0xFFFF) as u32,
            batch_ops: (w[1] & 0xFFFF_FFFF) as u32,
            submit_ns: w[2],
            route_ns: w[3],
            enqueue_ns: w[4],
            execute_ns: w[5],
            complete_ns: w[6],
            respond_ns: w[7],
        }
    }
}

/// One ring slot: a seqlock sequence word guarding an atomically-stored
/// span payload. Odd sequence = a writer is mid-update.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// Fixed-capacity lock-free span ring (see module docs).
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the most recent `capacity` spans (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded so far (including any already overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans dropped because their slot was owned by a concurrent writer
    /// (only possible when writers lap the ring).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one span. Lock-free: a writer that finds its slot mid-write
    /// (a lapping writer still inside it) drops the span instead of
    /// spinning.
    pub fn record(&self, span: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (cell, w) in slot.words.iter().zip(span.encode()) {
            cell.store(w, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Collect the currently-consistent spans, oldest first (by submit
    /// timestamp). Torn slots (concurrently being rewritten) are skipped.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let live = (head.min(self.slots.len() as u64)) as usize;
        let mut out = Vec::with_capacity(live);
        for slot in self.slots.iter().take(live) {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let mut words = [0u64; SPAN_WORDS];
            for (w, cell) in words.iter_mut().zip(slot.words.iter()) {
                *w = cell.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn: a writer got in between
            }
            out.push(SpanRecord::decode(words));
        }
        out.sort_by_key(|s| (s.submit_ns, s.op_id));
        out
    }
}

/// Deterministic 1-in-N sampler shared by all submitters.
///
/// Each submit claims a contiguous range of global op ids with one relaxed
/// `fetch_add`; the claim reports which offset inside the batch (if any)
/// falls on a sampling point. Op id 0 is always sampled, so short runs
/// still produce at least one span.
#[derive(Debug)]
pub struct Sampler {
    one_in: u64,
    next_id: AtomicU64,
}

impl Sampler {
    /// Sample one in `one_in` operations (clamped to at least 1 = all).
    pub fn new(one_in: u64) -> Sampler {
        Sampler {
            one_in: one_in.max(1),
            next_id: AtomicU64::new(0),
        }
    }

    /// The configured sampling period.
    pub fn one_in(&self) -> u64 {
        self.one_in
    }

    /// Claim `n` op ids; if one of them is a sampling point, return
    /// `(op_id, offset_in_batch)` of the first such op.
    #[inline]
    pub fn claim(&self, n: u64) -> Option<(u64, usize)> {
        if n == 0 {
            return None;
        }
        let start = self.next_id.fetch_add(n, Ordering::Relaxed);
        let first = start.next_multiple_of(self.one_in);
        (first < start + n).then(|| (first, (first - start) as usize))
    }
}

/// Render spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array Format" wrapped in `traceEvents`).
///
/// Each span becomes up to four duration (`"ph":"X"`) events — `route`,
/// `queue`, `execute`, `respond` — on the traced shard's track
/// (`tid` = shard), with the op id and request kind in `args`. Timestamps
/// are microseconds (fractional), relative to the telemetry epoch.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 360);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for span in spans {
        let stages = [
            ("route", span.submit_ns, span.enqueue_ns),
            ("queue", span.enqueue_ns, span.execute_ns),
            ("execute", span.execute_ns, span.complete_ns),
            ("respond", span.complete_ns, span.respond_ns),
        ];
        for (name, start, end) in stages {
            if end < start {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"pipeline\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"op\":{},\"kind\":\"{}\",\"batch_ops\":{}}}}}",
                start as f64 / 1e3,
                (end - start) as f64 / 1e3,
                span.shard,
                span.op_id,
                span.kind.label(),
                span.batch_ops,
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn span(op_id: u64, shard: u32, base_ns: u64) -> SpanRecord {
        SpanRecord {
            op_id,
            kind: RequestKind::ALL[(op_id % 5) as usize],
            shard,
            batch_ops: 17,
            submit_ns: base_ns,
            route_ns: base_ns + 1,
            enqueue_ns: base_ns + 2,
            execute_ns: base_ns + 10,
            complete_ns: base_ns + 50,
            respond_ns: base_ns + 55,
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        for id in 0..10 {
            let s = span(id, (id % 3) as u32, id * 1000);
            assert_eq!(SpanRecord::decode(s.encode()), s);
        }
    }

    #[test]
    fn ring_stores_and_returns_spans_in_order() {
        let ring = TraceRing::new(16);
        assert_eq!(ring.capacity(), 16);
        for i in 0..5 {
            ring.record(span(i, 0, (5 - i) * 100)); // reverse time order
        }
        let got = ring.recent();
        assert_eq!(got.len(), 5);
        // Sorted by submit timestamp, not insertion order.
        assert!(got.windows(2).all(|w| w[0].submit_ns <= w[1].submit_ns));
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        assert_eq!(TraceRing::new(0).capacity(), 2);
        assert_eq!(TraceRing::new(5).capacity(), 8);
        assert_eq!(TraceRing::new(64).capacity(), 64);
    }

    #[test]
    fn wraparound_keeps_only_the_newest_spans() {
        let ring = TraceRing::new(8);
        for i in 0..100 {
            ring.record(span(i, 0, i * 10));
        }
        let got = ring.recent();
        assert_eq!(got.len(), 8, "full ring holds exactly capacity spans");
        // The survivors are the last 8 written.
        let ids: Vec<u64> = got.iter().map(|s| s.op_id).collect();
        assert_eq!(ids, (92..100).collect::<Vec<u64>>());
        assert_eq!(ring.recorded(), 100);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_spans() {
        let ring = Arc::new(TraceRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let id = t * 10_000 + i;
                        ring.record(span(id, t as u32, id));
                    }
                })
            })
            .collect();
        // Concurrent reader: every span it sees must be internally
        // consistent (timestamps strictly laddered the way `span` builds
        // them), proving torn reads are filtered out.
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for s in ring.recent() {
                        assert_eq!(s.route_ns, s.submit_ns + 1, "torn span {s:?}");
                        assert_eq!(s.respond_ns, s.submit_ns + 55, "torn span {s:?}");
                        assert_eq!(s.batch_ops, 17);
                    }
                    std::thread::yield_now();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        // Everything was either recorded or counted as dropped.
        assert_eq!(ring.recorded(), 40_000);
        let final_spans = ring.recent();
        assert!(!final_spans.is_empty());
        assert!(final_spans.len() <= 64);
    }

    #[test]
    fn sampler_picks_every_nth_op() {
        let s = Sampler::new(10);
        // First claim starts at id 0, which is always a sampling point.
        assert_eq!(s.claim(4), Some((0, 0)));
        // ids 4..8: no multiple of 10.
        assert_eq!(s.claim(4), None);
        // ids 8..16: 10 is at offset 2.
        assert_eq!(s.claim(8), Some((10, 2)));
        assert_eq!(s.claim(0), None);
        // A huge claim samples its first in-range point.
        assert_eq!(s.claim(100), Some((20, 4)));
    }

    #[test]
    fn sampler_one_in_one_samples_everything() {
        let s = Sampler::new(0); // clamped to 1
        assert_eq!(s.one_in(), 1);
        for i in 0..5 {
            assert_eq!(s.claim(1), Some((i, 0)));
        }
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let spans = vec![span(0, 0, 100), span(7, 2, 500)];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            8,
            "4 stages x 2 spans"
        );
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"kind\":\"update\"") || json.contains("\"kind\":\"range\""));
        // Balanced braces/brackets (cheap structural check; the bench-side
        // validator does a full JSON parse).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
