//! A sharded key-value "server": the `gre-shard` serving layer over ALEX+,
//! serving scripted scenario traffic through the typed client API.
//!
//! Demonstrates the full serving stack in two acts:
//!
//! 1. The raw client surface: the typed `IndexBuilder` configuration, a
//!    `ShardPipeline` answering per-op `Response` values through a
//!    non-blocking `SubmitHandle` polled to completion without ever calling
//!    `wait()`, and cross-shard bounded range scans.
//! 2. The scenario engine: a two-phase `Scenario` (closed-loop read-mostly
//!    churn, then an open-loop write burst at a fixed arrival rate)
//!    executed by the `Driver` against a `SessionTarget` — pipelined
//!    `Session`s per driver thread — with per-phase throughput and
//!    coordinated-omission-safe tail latency.
//!
//! Run with `cargo run --release --example sharded_server`.

use gre::shard::{OpBatch, SessionTarget, ShardPipeline};
use gre_bench::registry::IndexBuilder;
use gre_core::ops::RequestKind;
use gre_core::{ConcurrentIndex, RangeSpec, Response};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{Driver, Op};
use std::sync::Arc;

const SHARDS: usize = 8;
const WORKERS: usize = 4;

fn main() {
    // ---- Act 1: the raw typed client API ------------------------------
    // Boot a store through the typed builder: 500k keys bulk-loaded into
    // ALEX+ shards behind a range partitioner fitted to the loaded key CDF.
    let entries: Vec<(u64, u64)> = (0..500_000u64).map(|i| (i * 4, i)).collect();
    let mut store = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(SHARDS)
        .build_sharded();
    store.bulk_load(&entries);
    println!(
        "serving {} keys as {} ({} shards, per-shard entries {:?})",
        store.len(),
        store.meta().name,
        store.num_shards(),
        store.per_shard_lens()
    );
    let pipeline = ShardPipeline::new(Arc::new(store), WORKERS);

    // A client reading its own typed results through a non-blocking
    // SubmitHandle: no wait() on the hot path — poll try_take and do other
    // work (here: just count the polls) until the responses arrive.
    let mut handle = pipeline.submit(OpBatch::new(vec![
        Op::Get(400_000),                            // loaded key → payload 100_000
        Op::Insert(400_001, 7),                      // fresh odd key
        Op::Get(123_456_789),                        // miss
        Op::Range(RangeSpec::bounded(80, 100, 100)), // bounded window scan
    ]));
    let mut polls = 0u64;
    let responses = loop {
        match handle.try_take() {
            Some(responses) => break responses,
            None => {
                polls += 1;
                std::thread::yield_now();
            }
        }
    };
    assert_eq!(responses[0], Response::Get(Some(100_000)));
    assert_eq!(responses[1], Response::Insert(true));
    assert_eq!(responses[2], Response::Get(None));
    println!(
        "non-blocking handle ready after {polls} polls: \
         get(400000) -> {:?}, insert(400001) -> {:?}, get(miss) -> {:?}",
        responses[0], responses[1], responses[2]
    );
    if let Response::Range(window) = &responses[3] {
        println!("bounded scan [80, 100] -> {window:?}");
        assert!(window.iter().all(|e| (80..=100).contains(&e.0)));
    }

    // A cross-shard scan through the serving layer.
    let store = pipeline.index();
    let mut window = Vec::new();
    let got = store.range(RangeSpec::new(1_000_000, 10), &mut window);
    println!(
        "scan of 10 keys from 1000000 crossed shards in key order: {got} keys, first {:?}",
        window.first()
    );
    assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
    drop(window);

    // ---- Act 2: scripted traffic through the scenario engine ----------
    // The same serving stack as a Driver target: each driver thread opens a
    // pipelined Session (64-op batches, up to 8 in flight) and executes the
    // scenario's phase script against it.
    let keys: Vec<u64> = (0..500_000u64).map(|i| i * 4).collect();
    let scenario = Scenario::new("serve", 42, &keys)
        .phase(Phase::new(
            "read-mostly churn",
            Mix::read_mostly(10),
            KeyDist::Zipf { theta: 0.99 },
            Span::Ops(400_000),
            Pacing::ClosedLoop { threads: 4 },
        ))
        .phase(Phase::new(
            "write burst @50k/s",
            Mix::read_mostly(80),
            KeyDist::Uniform,
            Span::Ops(50_000),
            Pacing::OpenLoop {
                rate_ops_s: 50_000.0,
            },
        ));
    let mut target = SessionTarget::new(
        IndexBuilder::backend("alex+")
            .expect("alex+ registered")
            .shards(SHARDS)
            .build_sharded(),
        WORKERS,
        64,
        8,
    );
    let result = Driver::new()
        .open_loop_senders(2)
        .run(&scenario, &mut target);

    println!("\nscenario '{}' on {}:", result.scenario, result.target);
    let mut new_keys = 0u64;
    for phase in &result.phases {
        let get = phase.kind_summary(RequestKind::Get);
        println!(
            "  {:<22} {:>8} ops {:>7.2} Mop/s  get p50={:>8.1}us p99={:>8.1}us \
             (open loop: latency from intended send)",
            phase.phase,
            phase.ops(),
            phase.throughput_mops(),
            get.p50_ns as f64 / 1e3,
            get.p99_ns as f64 / 1e3,
        );
        new_keys += phase.tally.new_keys;
    }

    // No lost updates: every accepted insert landed exactly once.
    assert_eq!(
        target.index().len() as u64,
        500_000 + new_keys,
        "inserted ops must all be visible"
    );
    println!(
        "inserted {new_keys} new keys; store now holds {}",
        target.index().len()
    );

    // The open-loop phase held its offered rate.
    let burst = result.phase("write burst @50k/s").expect("burst phase ran");
    let achieved = burst.achieved_rate();
    println!(
        "burst offered 50000 ops/s, achieved {achieved:.0} ops/s ({:+.1}%)",
        (achieved - 50_000.0) / 50_000.0 * 100.0
    );
}
