//! Wormhole-like hash-accelerated ordered index (simplified).
//!
//! Wormhole (Wu et al., EuroSys'19) stores keys in sorted leaf segments and
//! reaches the right segment through a hashed meta-trie over key prefixes,
//! achieving O(log L) point lookups (L = key length) instead of O(log n).
//! Our simplification keeps the two layers — sorted leaf segments plus an
//! "inner layer" that maps keys to segments — but implements the inner layer
//! as a sorted anchor array with binary search plus a direct-mapped hash
//! hint table over the high key bits that short-circuits the binary search
//! for most lookups. The property the paper leans on (a monolithic inner
//! layer whose updates serialize writers in the concurrent variant) is
//! preserved: every leaf split rebuilds the hint table.

use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};

/// Target number of entries per leaf segment.
pub const LEAF_TARGET: usize = 128;
/// Number of slots in the hash hint table per leaf.
const HINT_FACTOR: usize = 4;

#[derive(Debug)]
struct Leaf<K> {
    /// Smallest key that can be stored in this leaf.
    anchor: K,
    keys: Vec<K>,
    values: Vec<Payload>,
}

impl<K: Key> Leaf<K> {
    fn memory(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<K>()
            + self.values.capacity() * std::mem::size_of::<Payload>()
    }
}

/// The Wormhole-like index.
#[derive(Debug)]
pub struct Wormhole<K> {
    /// Leaf segments sorted by anchor key.
    leaves: Vec<Leaf<K>>,
    /// Hash hint table: maps a hash of the key's high bits to a leaf index
    /// that is guaranteed to be at or before the correct leaf.
    hints: Vec<u32>,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for Wormhole<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Wormhole<K> {
    pub fn new() -> Self {
        Wormhole {
            leaves: vec![Leaf {
                anchor: K::MIN,
                keys: Vec::new(),
                values: Vec::new(),
            }],
            hints: vec![0],
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    /// Number of leaf segments (exposed for tests and memory analysis).
    pub fn segment_count(&self) -> usize {
        self.leaves.len()
    }

    #[inline]
    fn hint_slot(&self, key: K) -> usize {
        if self.hints.is_empty() {
            return 0;
        }
        // The hint table is indexed by the key's position in model space
        // scaled into the table, which mirrors Wormhole's prefix hashing for
        // monotone key bytes.
        let lo = self.leaves[0].anchor.to_model_input();
        let hi = self
            .leaves
            .last()
            .map(|l| l.anchor.to_model_input())
            .unwrap_or(lo);
        if hi <= lo {
            return 0;
        }
        let t = ((key.to_model_input() - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * (self.hints.len() - 1) as f64) as usize).min(self.hints.len() - 1)
    }

    /// Find the leaf that should contain `key`.
    fn leaf_for(&self, key: K) -> usize {
        let hinted = self.hints[self.hint_slot(key)] as usize;
        let mut idx = hinted.min(self.leaves.len() - 1);
        // The hint is a lower bound; advance while the next leaf's anchor is
        // still <= key, and retreat if the hint overshoots.
        while idx > 0 && self.leaves[idx].anchor > key {
            idx -= 1;
        }
        while idx + 1 < self.leaves.len() && self.leaves[idx + 1].anchor <= key {
            idx += 1;
        }
        idx
    }

    /// Rebuild the hint table (the "inner layer" maintenance that serializes
    /// writers in the concurrent variant).
    fn rebuild_hints(&mut self) {
        let slots = (self.leaves.len() * HINT_FACTOR).max(1);
        let mut hints = vec![0u32; slots];
        // For each slot, store the index of the last leaf whose anchor maps
        // at or before the slot.
        let lo = self.leaves[0].anchor.to_model_input();
        let hi = self
            .leaves
            .last()
            .map(|l| l.anchor.to_model_input())
            .unwrap_or(lo);
        if hi > lo {
            let mut leaf = 0usize;
            for (s, hint) in hints.iter_mut().enumerate() {
                let slot_key = lo + (s as f64 / (slots - 1).max(1) as f64) * (hi - lo);
                while leaf + 1 < self.leaves.len()
                    && self.leaves[leaf + 1].anchor.to_model_input() <= slot_key
                {
                    leaf += 1;
                }
                *hint = leaf as u32;
            }
        }
        self.hints = hints;
    }

    fn split_leaf(&mut self, idx: usize) {
        let (right_keys, right_values) = {
            let leaf = &mut self.leaves[idx];
            let mid = leaf.keys.len() / 2;
            (leaf.keys.split_off(mid), leaf.values.split_off(mid))
        };
        let anchor = right_keys[0];
        self.leaves.insert(
            idx + 1,
            Leaf {
                anchor,
                keys: right_keys,
                values: right_values,
            },
        );
        self.rebuild_hints();
    }
}

impl<K: Key> Index<K> for Wormhole<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.leaves.clear();
        self.len = entries.len();
        if entries.is_empty() {
            self.leaves.push(Leaf {
                anchor: K::MIN,
                keys: Vec::new(),
                values: Vec::new(),
            });
            self.rebuild_hints();
            return;
        }
        for chunk in entries.chunks(LEAF_TARGET) {
            self.leaves.push(Leaf {
                anchor: chunk[0].0,
                keys: chunk.iter().map(|e| e.0).collect(),
                values: chunk.iter().map(|e| e.1).collect(),
            });
        }
        // The first leaf must accept any key below the first anchor.
        self.leaves[0].anchor = K::MIN;
        self.rebuild_hints();
    }

    fn get(&self, key: K) -> Option<Payload> {
        let leaf = &self.leaves[self.leaf_for(key)];
        leaf.keys.binary_search(&key).ok().map(|i| leaf.values[i])
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let mut stats = InsertStats::default();
        let idx = self.leaf_for(key);
        stats.nodes_traversed = 1;
        let (inserted, needs_split) = {
            let leaf = &mut self.leaves[idx];
            match leaf.keys.binary_search(&key) {
                Ok(i) => {
                    leaf.values[i] = value;
                    (false, false)
                }
                Err(i) => {
                    stats.keys_shifted = (leaf.keys.len() - i) as u64;
                    leaf.keys.insert(i, key);
                    leaf.values.insert(i, value);
                    (true, leaf.keys.len() > LEAF_TARGET * 2)
                }
            }
        };
        if inserted {
            self.len += 1;
        }
        if needs_split {
            stats.triggered_smo = true;
            stats.nodes_created = 1;
            self.split_leaf(idx);
        }
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let idx = self.leaf_for(key);
        self.counters.record_remove(1);
        let leaf = &mut self.leaves[idx];
        match leaf.keys.binary_search(&key) {
            Ok(i) => {
                leaf.keys.remove(i);
                let v = leaf.values.remove(i);
                self.len -= 1;
                Some(v)
            }
            Err(_) => None,
        }
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let mut idx = self.leaf_for(spec.start);
        while idx < self.leaves.len() && out.len() - before < spec.count {
            let leaf = &self.leaves[idx];
            let from = leaf.keys.partition_point(|k| *k < spec.start);
            for i in from..leaf.keys.len() {
                if out.len() - before >= spec.count {
                    break;
                }
                out.push((leaf.keys[i], leaf.values[i]));
            }
            idx += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.leaves.iter().map(Leaf::memory).sum::<usize>()
            + self.hints.capacity() * std::mem::size_of::<u32>()
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Wormhole",
            learned: false,
            concurrent: false,
            supports_delete: false,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn bulk_load_and_lookup() {
        let mut w = Wormhole::new();
        let entries: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i * 3, i)).collect();
        w.bulk_load(&entries);
        assert_eq!(w.len(), 10_000);
        assert!(w.segment_count() > 1);
        for i in (0..10_000).step_by(29) {
            assert_eq!(w.get(i * 3), Some(i));
            assert_eq!(w.get(i * 3 + 1), None);
        }
    }

    #[test]
    fn inserts_split_segments() {
        let mut w = Wormhole::new();
        let before = w.segment_count();
        for i in 0..5_000u64 {
            assert!(w.insert(i * 7, i));
        }
        assert!(w.segment_count() > before);
        for i in 0..5_000u64 {
            assert_eq!(w.get(i * 7), Some(i));
        }
        assert!(w.stats().counters.smo_count > 0);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut w = Wormhole::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x77777;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 6000;
            match x % 3 {
                0 => assert_eq!(w.insert(key, i), model.insert(key, i).is_none()),
                1 => assert_eq!(w.remove(key), model.remove(&key)),
                _ => assert_eq!(w.get(key), model.get(&key).copied()),
            }
        }
        assert_eq!(w.len(), model.len());
        let mut out = Vec::new();
        w.range(RangeSpec::new(0, usize::MAX), &mut out);
        let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_scan_spans_segments() {
        let mut w = Wormhole::new();
        let entries: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i, i)).collect();
        w.bulk_load(&entries);
        let mut out = Vec::new();
        assert_eq!(w.range(RangeSpec::new(100, 500), &mut out), 500);
        assert_eq!(out[0].0, 100);
        assert_eq!(out.last().unwrap().0, 599);
    }

    #[test]
    fn keys_below_first_anchor_are_found() {
        let mut w = Wormhole::new();
        w.bulk_load(&(100..200u64).map(|i| (i, i)).collect::<Vec<_>>());
        assert!(w.insert(5, 55));
        assert_eq!(w.get(5), Some(55));
        assert_eq!(w.get(1), None);
    }

    #[test]
    fn empty_behaviour() {
        let mut w: Wormhole<u64> = Wormhole::new();
        assert_eq!(w.get(3), None);
        assert_eq!(w.remove(3), None);
        w.bulk_load(&[]);
        assert!(w.is_empty());
        assert!(w.insert(1, 1));
        assert_eq!(w.get(1), Some(1));
    }
}
