//! Synthetic hardness-driven data generator (§7).
//!
//! The paper's generator samples keys from a set of random linear models:
//! for each segment a positive slope `m` and intercept `b` are drawn, and for
//! a rank `y` the key is sampled uniformly from
//! `[max((y − ε − b)/m, prev + 1), (y + ε − b)/m]`, generating keys
//! incrementally from rank 1 to rank N. Segments are generated recursively:
//! first global segments (with a large ε), then local segments inside each
//! global segment (with a small ε), so the resulting dataset lands at a
//! chosen coordinate of the (local, global) hardness plane. The corner
//! datasets of Figure 15 (`syn_ghard_leasy`, `syn_geasy_lhard`,
//! `syn_ghard_lhard`) are provided as named presets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a synthetic dataset in the hardness plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Total number of keys to generate.
    pub num_keys: usize,
    /// Number of global segments (drives `H_PLA(ε=4096)`).
    pub global_segments: usize,
    /// Number of local segments inside each global segment
    /// (drives `H_PLA(ε=32)`).
    pub local_segments_per_global: usize,
    /// Error bound used when sampling keys inside a local segment.
    pub local_eps: u64,
    /// How violently the slope changes between global segments; larger
    /// values produce sharper CDF deflections (planet-like shapes).
    pub global_slope_spread: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            num_keys: 200_000,
            global_segments: 4,
            local_segments_per_global: 4,
            local_eps: 32,
            global_slope_spread: 100.0,
            seed: 42,
        }
    }
}

/// The "hard corner" presets of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthCorner {
    /// Globally hard, locally easy: many global segments, smooth inside each.
    GlobalHardLocalEasy,
    /// Globally easy, locally hard: a single global trend with many bumpy
    /// local segments.
    GlobalEasyLocalHard,
    /// Hard on both axes.
    GlobalHardLocalHard,
    /// Easy on both axes (a near-linear baseline).
    Easy,
}

impl SynthCorner {
    /// All corners in display order.
    pub const ALL: [SynthCorner; 4] = [
        SynthCorner::Easy,
        SynthCorner::GlobalHardLocalEasy,
        SynthCorner::GlobalEasyLocalHard,
        SynthCorner::GlobalHardLocalHard,
    ];

    /// Name used in the paper's Figure 14 heatmap labels.
    pub fn name(&self) -> &'static str {
        match self {
            SynthCorner::GlobalHardLocalEasy => "syn_ghard_leasy",
            SynthCorner::GlobalEasyLocalHard => "syn_geasy_lhard",
            SynthCorner::GlobalHardLocalHard => "syn_ghard_lhard",
            SynthCorner::Easy => "syn_easy",
        }
    }

    /// Build a spec positioned at this corner with `num_keys` keys.
    pub fn spec(&self, num_keys: usize, seed: u64) -> SyntheticSpec {
        match self {
            SynthCorner::Easy => SyntheticSpec {
                num_keys,
                global_segments: 1,
                local_segments_per_global: 1,
                local_eps: 32,
                global_slope_spread: 1.0,
                seed,
            },
            SynthCorner::GlobalHardLocalEasy => SyntheticSpec {
                num_keys,
                global_segments: 48,
                local_segments_per_global: 1,
                local_eps: 32,
                global_slope_spread: 5_000.0,
                seed,
            },
            SynthCorner::GlobalEasyLocalHard => SyntheticSpec {
                num_keys,
                global_segments: 1,
                local_segments_per_global: 512,
                local_eps: 8,
                global_slope_spread: 1.0,
                seed,
            },
            SynthCorner::GlobalHardLocalHard => SyntheticSpec {
                num_keys,
                global_segments: 48,
                local_segments_per_global: 64,
                local_eps: 8,
                global_slope_spread: 5_000.0,
                seed,
            },
        }
    }
}

/// Generate a sorted, deduplicated key array following `spec`.
///
/// The resulting array is strictly ascending (suitable for bulk load) and has
/// exactly `spec.num_keys` keys unless the key domain saturates (only
/// possible with absurd parameter choices), in which case generation stops at
/// the domain boundary.
pub fn generate(spec: &SyntheticSpec) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let globals = spec.global_segments.max(1);
    let locals = spec.local_segments_per_global.max(1);
    let keys_per_segment = (spec.num_keys / (globals * locals)).max(1);
    let eps = spec.local_eps.max(1) as f64;
    let spread = spec.global_slope_spread.max(1.0);

    let mut keys: Vec<u64> = Vec::with_capacity(spec.num_keys);
    let mut prev: f64 = 0.0;

    for _g in 0..globals {
        // Each global segment draws a key density (average gap between
        // consecutive keys, i.e. 1/slope of the CDF) that varies by up to
        // `spread` orders of the base gap between segments. Sharply differing
        // densities between global segments are what create the global
        // non-linearity of planet/osm-like CDFs.
        let global_gap = 1.0 + rng.gen::<f64>() * spread;
        for _l in 0..locals {
            // Local segments perturb the global density. With many local
            // segments and a small ε this yields locally bumpy data.
            let local_gap = (global_gap * (0.1 + rng.gen::<f64>() * 3.9)).max(1.0);
            // The segment follows key ≈ origin + local_gap * r with per-key
            // deviation bounded by ±ε·local_gap, the paper's
            // [(y−ε−b)/m, (y+ε−b)/m] sampling window.
            let origin = prev + local_gap;
            for r in 0..keys_per_segment {
                if keys.len() >= spec.num_keys {
                    break;
                }
                let center = origin + local_gap * r as f64;
                let lo = (center - eps * local_gap).max(prev + 1.0);
                let hi = (center + eps * local_gap).max(lo);
                let key = rng.gen_range(lo..=hi).min(u64::MAX as f64 - 1.0);
                prev = key.max(prev + 1.0);
                keys.push(prev as u64);
            }
            // Jump past the bounding box of the previous segment so the next
            // segment cannot be fitted by the same model (paper §7: increment
            // the first key of the next segment until it exits the previous
            // segment's convex-hull bounding box).
            prev += (eps * local_gap * 4.0).max(2.0);
        }
        // Larger jump between global segments.
        prev += global_gap * keys_per_segment as f64;
    }

    // Top up to the exact requested size with a linear tail if integer
    // division left a remainder.
    while keys.len() < spec.num_keys {
        prev += 7.0;
        keys.push(prev.min(u64::MAX as f64 - 1.0) as u64);
    }
    keys.truncate(spec.num_keys);
    keys
}

/// Generate a corner dataset (Figure 15).
pub fn generate_corner(corner: SynthCorner, num_keys: usize, seed: u64) -> Vec<u64> {
    generate(&corner.spec(num_keys, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardness::DataHardness;

    #[test]
    fn generated_keys_are_strictly_ascending() {
        let keys = generate(&SyntheticSpec {
            num_keys: 10_000,
            ..Default::default()
        });
        assert_eq!(keys.len(), 10_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec {
            num_keys: 5_000,
            seed: 7,
            ..Default::default()
        };
        assert_eq!(generate(&spec), generate(&spec));
        let other = SyntheticSpec { seed: 8, ..spec };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn corners_land_in_the_right_region_of_the_hardness_plane() {
        // The paper measures hardness at ε = 32 / 4096 on 200M-key datasets.
        // At unit-test scale (60k keys) the same *relative* geometry holds
        // when ε is scaled down proportionally to the per-segment key count.
        let n = 60_000;
        let cfg = crate::hardness::HardnessConfig {
            local_eps: 8,
            global_eps: 512,
        };
        let measure = |keys: &[u64]| DataHardness::compute(keys, cfg);
        let easy = measure(&generate_corner(SynthCorner::Easy, n, 1));
        let ghard = measure(&generate_corner(SynthCorner::GlobalHardLocalEasy, n, 1));
        let lhard = measure(&generate_corner(SynthCorner::GlobalEasyLocalHard, n, 1));
        let both = measure(&generate_corner(SynthCorner::GlobalHardLocalHard, n, 1));

        // Global-hard corners must have more global segments than the easy one.
        assert!(
            ghard.global > easy.global,
            "{} vs {}",
            ghard.global,
            easy.global
        );
        assert!(both.global > easy.global);
        // Local-hard corners must have more local segments than the easy one.
        assert!(
            lhard.local > easy.local,
            "{} vs {}",
            lhard.local,
            easy.local
        );
        assert!(both.local > easy.local);
        // The locally-hard corner should be harder locally than the
        // globally-hard-locally-easy corner.
        assert!(lhard.local > ghard.local);
    }

    #[test]
    fn corner_names_are_stable() {
        assert_eq!(SynthCorner::GlobalHardLocalHard.name(), "syn_ghard_lhard");
        assert_eq!(SynthCorner::ALL.len(), 4);
    }

    #[test]
    fn tiny_and_degenerate_specs_do_not_panic() {
        let keys = generate(&SyntheticSpec {
            num_keys: 3,
            global_segments: 10,
            local_segments_per_global: 10,
            ..Default::default()
        });
        assert_eq!(keys.len(), 3);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));

        let keys = generate(&SyntheticSpec {
            num_keys: 100,
            global_segments: 0,
            local_segments_per_global: 0,
            local_eps: 0,
            ..Default::default()
        });
        assert_eq!(keys.len(), 100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
