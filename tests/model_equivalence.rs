//! Randomized model tests: every index must behave exactly like a `BTreeMap`
//! under arbitrary operation sequences (the core correctness invariant of the
//! whole suite).
//!
//! These were originally proptest strategies; the vendored offline toolchain
//! has no proptest, so the same property is exercised with seeded random
//! operation sequences (deterministic, so failures reproduce by seed).

use gre::learned::{Alex, DynamicPgm, Lipp};
use gre::traditional::{Art, BPlusTree, Hot, Wormhole};
use gre_core::{Index, RangeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const CASES: u64 = 32;
const KEY_SPACE: u64 = 2_000;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, usize),
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..4u32) {
        0 => Op::Insert(rng.gen_range(0..KEY_SPACE), rng.gen()),
        1 => Op::Remove(rng.gen_range(0..KEY_SPACE)),
        2 => Op::Get(rng.gen_range(0..KEY_SPACE)),
        _ => Op::Range(rng.gen_range(0..KEY_SPACE), rng.gen_range(0..64)),
    }
}

fn random_bulk(rng: &mut StdRng) -> Vec<(u64, u64)> {
    let len = rng.gen_range(0..400usize);
    let map: BTreeMap<u64, u64> = (0..len)
        .map(|_| (rng.gen_range(0..KEY_SPACE), rng.gen()))
        .collect();
    map.into_iter().collect()
}

fn check_against_model<I: Index<u64>>(mut index: I, ops: &[Op], bulk: &[(u64, u64)], case: u64) {
    let mut model: BTreeMap<u64, u64> = bulk.iter().copied().collect();
    index.bulk_load(bulk);
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                assert_eq!(
                    index.insert(k, v),
                    model.insert(k, v).is_none(),
                    "insert {k} (case {case})"
                );
            }
            Op::Remove(k) => {
                assert_eq!(
                    index.remove(k),
                    model.remove(&k),
                    "remove {k} (case {case})"
                );
            }
            Op::Get(k) => {
                assert_eq!(
                    index.get(k),
                    model.get(&k).copied(),
                    "get {k} (case {case})"
                );
            }
            Op::Range(k, c) => {
                let mut out = Vec::new();
                index.range(RangeSpec::new(k, c), &mut out);
                let expected: Vec<(u64, u64)> =
                    model.range(k..).take(c).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(out, expected, "range from {k} count {c} (case {case})");
            }
        }
    }
    assert_eq!(index.len(), model.len(), "final length (case {case})");
}

macro_rules! model_test {
    ($name:ident, $ctor:expr) => {
        #[test]
        fn $name() {
            for case in 0..CASES {
                // Per-case seed derived from the test name so the suites stay
                // independent yet fully reproducible.
                let seed = fnv64(stringify!($name)) ^ case;
                let mut rng = StdRng::seed_from_u64(seed);
                let bulk = random_bulk(&mut rng);
                let op_count = rng.gen_range(1..300usize);
                let ops: Vec<Op> = (0..op_count).map(|_| random_op(&mut rng)).collect();
                check_against_model($ctor, &ops, &bulk, case);
            }
        }
    };
}

fn fnv64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

model_test!(alex_matches_btreemap, Alex::<u64>::new());
model_test!(lipp_matches_btreemap, Lipp::<u64>::new());
model_test!(pgm_matches_btreemap, DynamicPgm::<u64>::new());
model_test!(btree_matches_btreemap, BPlusTree::<u64>::new());
model_test!(art_matches_btreemap, Art::<u64>::new());
model_test!(hot_matches_btreemap, Hot::<u64>::new());
model_test!(wormhole_matches_btreemap, Wormhole::<u64>::new());
