//! Replication scaling: read throughput vs replica count × read fraction
//! through [`ReplicatedTarget`] — the write-forwarding primary ships its
//! WAL to read replicas, so adding replicas should buy read capacity
//! without touching the write path.
//!
//! **Why the read-service floor?** The harness may run on a single core,
//! where replica backends answer a point lookup in well under a
//! microsecond and the measurement would be dominated by driver overhead,
//! not replica capacity. Each *replica* backend is therefore wrapped in a
//! [`Throttled`] decorator that charges a fixed service floor per read
//! (`get`/`get_batch`/`range`), modeling a remote replica's per-request
//! service time. Sleeping workers overlap regardless of core count, so
//! read capacity genuinely scales with the number of replica servers
//! (`replica_workers(1)` serializes each replica as one server), while the
//! primary stays unthrottled. Every cell uses the same seed and mix, so
//! throughput ratios across replica counts are apples-to-apples.
//!
//! The sweep runs replica count × read fraction, asserts every cell is
//! error-free and every replica quiesces byte-identical to the primary's
//! committed watermark, and requires the 3-replica 95/5 cell to out-serve
//! the 1-replica cell. Results land in `BENCH_replication.json` in the
//! standard perf-trajectory schema (targets `replica×N`), round-tripped
//! through the repo's JSON parser. `--check FILE` re-validates a committed
//! report without running the sweep (the CI smoke step).

use gre_bench::perfjson::{BenchConfig, BenchReport, BenchResult, SCHEMA_VERSION};
use gre_bench::RunOpts;
use gre_core::{ConcurrentIndex, IndexMeta, InsertStats, Payload, RangeSpec, StatsSnapshot};
use gre_datasets::Dataset;
use gre_durability::util::TempDir;
use gre_learned::AlexPlus;
use gre_replica::ReplicatedTarget;
use gre_shard::{Partitioner, ShardedIndex};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::Driver;
use std::process::Command;
use std::time::Duration;

const REPORT_OUT: &str = "BENCH_replication.json";
const SHARDS: usize = 4;
/// Per-read service floor charged by replica backends (see module docs).
const READ_FLOOR: Duration = Duration::from_micros(50);
/// Closed-loop driver threads. Fixed rather than core-derived: the cells
/// are sleep-bound, so client concurrency must exceed the widest replica
/// fan-out for the capacity difference to be observable.
const DRIVER_THREADS: usize = 8;
/// Required speedup of the 3-replica 95/5 cell over the 1-replica cell.
const MIN_SPEEDUP: f64 = 1.3;

type Inner = Box<dyn ConcurrentIndex<u64>>;

/// Decorator charging a fixed service floor per read operation. Writes
/// (and the replica WAL-apply path) pass through unthrottled.
struct Throttled {
    inner: Inner,
    floor: Duration,
}

impl Throttled {
    fn new(floor: Duration) -> Throttled {
        Throttled {
            inner: Box::new(AlexPlus::<u64>::new()),
            floor,
        }
    }

    #[inline]
    fn charge(&self, reads: u32) {
        if !self.floor.is_zero() && reads > 0 {
            std::thread::sleep(self.floor * reads);
        }
    }
}

impl ConcurrentIndex<u64> for Throttled {
    fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
        self.inner.bulk_load(entries);
    }
    fn get(&self, key: u64) -> Option<Payload> {
        self.charge(1);
        self.inner.get(key)
    }
    fn get_batch(&self, keys: &[u64], out: &mut Vec<Option<Payload>>) {
        self.charge(keys.len() as u32);
        self.inner.get_batch(keys, out);
    }
    fn insert(&self, key: u64, value: Payload) -> bool {
        self.inner.insert(key, value)
    }
    fn update(&self, key: u64, value: Payload) -> bool {
        self.inner.update(key, value)
    }
    fn remove(&self, key: u64) -> Option<Payload> {
        self.inner.remove(key)
    }
    fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
        self.charge(1);
        self.inner.range(spec, out)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn memory_usage(&self) -> usize {
        self.inner.memory_usage()
    }
    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
    fn last_insert_stats(&self) -> InsertStats {
        self.inner.last_insert_stats()
    }
    fn meta(&self) -> IndexMeta {
        self.inner.meta()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or(REPORT_OUT);
        if let Err(e) = check(path) {
            eprintln!("replication report check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let opts = RunOpts::parse(args);
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    let ops: u64 = if opts.quick { 6_000 } else { 24_000 };
    let (replica_axis, pct_axis): (&[usize], &[u32]) = if opts.quick {
        (&[1, 3], &[95])
    } else {
        (&[1, 2, 3], &[50, 95, 100])
    };

    println!(
        "# Replication scaling: {} replicas x {:?}% reads, {} ops/cell, \
         {} driver threads, {}µs read floor",
        replica_axis.len(),
        pct_axis,
        ops,
        DRIVER_THREADS,
        READ_FLOOR.as_micros()
    );
    println!(
        "\n{:<12} {:<16} {:>12} {:>10} {:>10}",
        "target", "mix", "ops/s", "p50 us", "p99 us"
    );

    let mut results: Vec<BenchResult> = Vec::new();
    for &pct in pct_axis {
        for &replicas in replica_axis {
            let row = run_cell(&opts, &keys, replicas, pct, ops);
            println!(
                "{:<12} {:<16} {:>12.0} {:>10.1} {:>10.1}",
                row.target, row.mix, row.throughput_ops_s, row.p50_us, row.p99_us
            );
            results.push(row);
        }
    }

    // The acceptance bar: on the 95/5 mix, three replicas must out-serve
    // one. Every cell replays the identical seeded op stream, so total
    // throughput is a fair proxy for read capacity (reads are 95% of it
    // and carry the service floor); the floor makes the gap a capacity
    // statement, not a scheduler accident.
    let rate_at = |replicas: usize| {
        results
            .iter()
            .find(|r| r.target == format!("replica×{replicas}") && r.mix == "read95/write5")
            .map(|r| r.throughput_ops_s)
            .expect("95/5 cell measured")
    };
    let (one, three) = (rate_at(1), rate_at(3));
    let speedup = three / one;
    println!("\n95/5 throughput: 3 replicas / 1 replica = {speedup:.2}x");
    assert!(
        speedup > MIN_SPEEDUP,
        "3-replica throughput ({three:.0} ops/s) must beat 1-replica ({one:.0} ops/s) \
         by >{MIN_SPEEDUP}x, got {speedup:.2}x"
    );

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        commit: current_commit(),
        config: BenchConfig {
            keys: keys.len(),
            ops,
            threads: DRIVER_THREADS,
            shards: SHARDS,
            seed: opts.seed,
            quick: opts.quick,
            batched_compare: Vec::new(),
        },
        results,
    };
    let json = report.to_json();
    let back = BenchReport::from_json(&json).expect("report must round-trip the JSON parser");
    replication_check(&back).expect("fresh report passes its own smoke check");
    std::fs::write(REPORT_OUT, &json).expect("write replication report");
    println!("report -> {REPORT_OUT} ({} bytes)", json.len());
}

/// Drive one (replica count, read fraction) cell and return its result row.
fn run_cell(opts: &RunOpts, keys: &[u64], replicas: usize, read_pct: u32, ops: u64) -> BenchResult {
    let mix = Mix::read_mostly(100 - read_pct);
    let scenario = Scenario::new("replication-scaling", opts.seed, keys).phase(Phase::new(
        "serve",
        mix,
        KeyDist::Uniform,
        Span::Ops(ops),
        Pacing::ClosedLoop {
            threads: DRIVER_THREADS,
        },
    ));

    let tmp = TempDir::new("figs-replication");
    let primary = ShardedIndex::from_factory(Partitioner::range(SHARDS), |_| {
        Throttled::new(Duration::ZERO)
    });
    let mut target =
        ReplicatedTarget::new(primary, 2, 64, tmp.path(), |_| Throttled::new(READ_FLOOR))
            .with_replicas(replicas)
            .replica_workers(1);

    let result = Driver::new().run(&scenario, &mut target);
    let phase = &result.phases[0];
    let label = format!("replica×{replicas}/read{read_pct}");
    assert_eq!(phase.ops(), ops, "{label}: phase completed");
    assert_eq!(phase.tally.errors, 0, "{label}: no errors without an SLO");
    assert_eq!(phase.shed(), 0, "{label}: nothing sheds without an SLO");

    // Every cell doubles as a consistency check: once shipping quiesces,
    // each replica's watermark covers everything the primary committed.
    target.quiesce();
    let committed = target.committed();
    for node in target.nodes() {
        assert_eq!(
            node.watermark().snapshot(),
            committed,
            "{label}: replica {} caught up",
            node.id()
        );
        assert_eq!(
            node.index().len(),
            target.primary().index().len(),
            "{label}: replica {} size equals primary",
            node.id()
        );
    }

    BenchResult::from_phase(
        &format!("sharded(ALEX+,{SHARDS})+{}µs-floor", READ_FLOOR.as_micros()),
        &format!("replica×{replicas}"),
        &format!("read{read_pct}/write{}", 100 - read_pct),
        phase,
    )
}

/// Validate a `BENCH_replication.json` document: trajectory schema, only
/// `replica×N` targets, finite numbers, and the 3-vs-1 replica ordering on
/// the 95/5 mix still holding in the stored data.
fn replication_check(report: &BenchReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.results.is_empty() {
        return Err(String::from("no results"));
    }
    for r in &report.results {
        let cell = format!("{}/{}/{}", r.backend, r.target, r.mix);
        if !r.target.starts_with("replica×") {
            return Err(format!("{cell}: unexpected target `{}`", r.target));
        }
        if r.ops == 0 {
            return Err(format!("{cell}: zero completed ops"));
        }
        for (name, v) in [
            ("throughput_ops_s", r.throughput_ops_s),
            ("p50_us", r.p50_us),
            ("p99_us", r.p99_us),
            ("p999_us", r.p999_us),
            ("mean_us", r.mean_us),
            ("max_us", r.max_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{cell}: `{name}` = {v} is not finite non-negative"));
            }
        }
    }
    let tput = |target: &str| {
        report
            .results
            .iter()
            .find(|r| r.target == target && r.mix == "read95/write5")
            .map(|r| r.throughput_ops_s)
            .ok_or_else(|| format!("missing {target} read95/write5 cell"))
    };
    let (one, three) = (tput("replica×1")?, tput("replica×3")?);
    if three <= one {
        return Err(format!(
            "stored 95/5 throughput does not scale: replica×3 {three:.0} <= replica×1 {one:.0}"
        ));
    }
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = BenchReport::from_json(&text).map_err(|e| format!("`{path}`: {e}"))?;
    replication_check(&report).map_err(|e| format!("`{path}`: {e}"))?;
    println!(
        "{path}: ok — schema v{}, commit {}, {} replication cells",
        report.schema_version,
        report.commit,
        report.results.len()
    );
    Ok(())
}

/// `git rev-parse HEAD`, or `unknown` outside a work tree.
fn current_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}
