//! # gre-elastic
//!
//! Online elasticity for the GRE serving stack: watch the per-shard load,
//! detect sustained imbalance, and repartition the key space **under live
//! traffic** — split a hot range shard, fold a cold segment into its
//! neighbour, or migrate a segment to another shard — without ever pausing
//! serving globally.
//!
//! * [`policy`] — [`policy::ElasticPolicy`] (the knobs) and
//!   [`policy::LoadWatcher`], a pure-logic detector over windowed per-shard
//!   throughput snapshots: it takes deltas of cumulative op counters, tracks
//!   hot/cold streaks against share thresholds, and emits a
//!   [`policy::Action`] once an imbalance sustains past the configured
//!   window (with a cooldown between consecutive actions).
//! * [`controller`] — [`controller::ElasticController`], the executor: it
//!   drives the drain-and-handoff protocol against a running
//!   [`gre_shard::ShardPipeline`]: freeze routing for the moving range,
//!   drain the FIFO queues, seal the window, bulk-extract, write the WAL
//!   topology handoff (when durable), bulk-insert into the target, and
//!   atomically swap the routing table. Only traffic targeting the moved
//!   range observes the pause; every other key keeps serving throughout.
//!
//! The shared vocabulary (typed [`gre_core::elastic::ElasticError`], the
//! [`gre_core::elastic::BoundaryChange`] event) lives in `gre-core`; the
//! routing mechanism (freeze/seal/commit epochs) in `gre-shard`; the
//! crash-consistent handoff records in `gre-durability`. See
//! `docs/ELASTICITY.md` for the full protocol walk-through.

pub mod controller;
pub mod policy;

pub use controller::ElasticController;
pub use gre_core::elastic::{BoundaryChange, ElasticError, TopologyKind};
pub use policy::{Action, ElasticPolicy, LoadWatcher};
