//! Wire serialization of the typed operation vocabulary.
//!
//! The durability tier logs accepted write operations to a per-shard
//! write-ahead log and replays them on recovery, so [`Request<u64>`] needs a
//! stable, self-delimiting byte encoding. The format is deliberately boring:
//! a one-byte tag followed by fixed-width little-endian fields, no varints,
//! no padding. Every encoded operation decodes back to exactly the request
//! that produced it ([`decode_request`] returns the consumed length, so
//! operations can be concatenated back to back inside a log record).
//!
//! Corruption robustness is split between layers: this module only promises
//! to *reject* (return `None` for) any prefix it cannot decode — truncated
//! buffers, unknown tags — never to panic or to read past `buf`. Detecting
//! *silent* corruption (bit flips that still decode) is the log layer's job;
//! `gre-durability` wraps each record of concatenated operations in a
//! length-prefixed, CRC-checksummed frame.

use crate::index::RangeSpec;
use crate::key::Payload;
use crate::ops::Request;

/// Operation tags. `u8` values are part of the on-disk format: never reuse
/// or renumber, only append.
const TAG_GET: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_REMOVE: u8 = 4;
const TAG_RANGE: u8 = 5;
const TAG_RANGE_BOUNDED: u8 = 6;

/// Append the wire encoding of `op` to `out`. Returns the number of bytes
/// written.
pub fn encode_request(op: &Request<u64>, out: &mut Vec<u8>) -> usize {
    let before = out.len();
    match *op {
        Request::Get(k) => {
            out.push(TAG_GET);
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::Insert(k, v) => {
            out.push(TAG_INSERT);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::Update(k, v) => {
            out.push(TAG_UPDATE);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::Remove(k) => {
            out.push(TAG_REMOVE);
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::Range(spec) => {
            match spec.end {
                None => out.push(TAG_RANGE),
                Some(end) => {
                    out.push(TAG_RANGE_BOUNDED);
                    out.extend_from_slice(&end.to_le_bytes());
                }
            }
            out.extend_from_slice(&spec.start.to_le_bytes());
            out.extend_from_slice(&(spec.count as u64).to_le_bytes());
        }
    }
    out.len() - before
}

/// Read one `u64` at `at`, or `None` past the end.
#[inline]
fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    let bytes = buf.get(at..at + 8)?;
    Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Decode one operation from the front of `buf`. Returns the request and
/// the number of bytes consumed, or `None` if the buffer is truncated or
/// starts with an unknown tag (the caller treats either as corruption).
pub fn decode_request(buf: &[u8]) -> Option<(Request<u64>, usize)> {
    let tag = *buf.first()?;
    match tag {
        TAG_GET => Some((Request::Get(read_u64(buf, 1)?), 9)),
        TAG_INSERT => Some((
            Request::Insert(read_u64(buf, 1)?, read_u64(buf, 9)? as Payload),
            17,
        )),
        TAG_UPDATE => Some((
            Request::Update(read_u64(buf, 1)?, read_u64(buf, 9)? as Payload),
            17,
        )),
        TAG_REMOVE => Some((Request::Remove(read_u64(buf, 1)?), 9)),
        TAG_RANGE => {
            let start = read_u64(buf, 1)?;
            let count = read_u64(buf, 9)?;
            Some((
                Request::Range(RangeSpec::new(start, usize::try_from(count).ok()?)),
                17,
            ))
        }
        TAG_RANGE_BOUNDED => {
            let end = read_u64(buf, 1)?;
            let start = read_u64(buf, 9)?;
            let count = read_u64(buf, 17)?;
            Some((
                Request::Range(RangeSpec::bounded(start, end, usize::try_from(count).ok()?)),
                25,
            ))
        }
        _ => None,
    }
}

/// Encode a slice of operations back to back.
pub fn encode_requests(ops: &[Request<u64>], out: &mut Vec<u8>) -> usize {
    let before = out.len();
    for op in ops {
        encode_request(op, out);
    }
    out.len() - before
}

/// Decode exactly `count` concatenated operations from `buf`, requiring the
/// buffer to be fully consumed. `None` on any decode failure, trailing
/// garbage, or short buffer.
pub fn decode_requests(buf: &[u8], count: usize) -> Option<Vec<Request<u64>>> {
    let mut ops = Vec::with_capacity(count);
    let mut at = 0usize;
    for _ in 0..count {
        let (op, used) = decode_request(&buf[at..])?;
        ops.push(op);
        at += used;
    }
    (at == buf.len()).then_some(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Request<u64>> {
        vec![
            Request::Get(0),
            Request::Get(u64::MAX),
            Request::Insert(7, 70),
            Request::Update(8, 80),
            Request::Remove(9),
            Request::Range(RangeSpec::new(100, 5)),
            Request::Range(RangeSpec::bounded(100, 200, usize::MAX)),
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for op in all_variants() {
            let mut buf = Vec::new();
            let written = encode_request(&op, &mut buf);
            assert_eq!(written, buf.len());
            let (decoded, used) = decode_request(&buf).expect("decodes");
            assert_eq!(decoded, op);
            assert_eq!(used, buf.len(), "{op:?} must be fully consumed");
        }
    }

    #[test]
    fn concatenated_streams_round_trip() {
        let ops = all_variants();
        let mut buf = Vec::new();
        encode_requests(&ops, &mut buf);
        let decoded = decode_requests(&buf, ops.len()).expect("decodes");
        assert_eq!(decoded, ops);
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        for op in all_variants() {
            let mut buf = Vec::new();
            encode_request(&op, &mut buf);
            for cut in 0..buf.len() {
                assert_eq!(
                    decode_request(&buf[..cut]).map(|(o, _)| o),
                    None,
                    "{op:?} truncated to {cut} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(decode_request(&[0u8; 32]).is_none());
        assert!(decode_request(&[99u8; 32]).is_none());
        assert!(decode_request(&[]).is_none());
    }

    #[test]
    fn trailing_garbage_fails_strict_stream_decode() {
        let mut buf = Vec::new();
        encode_request(&Request::Get(1), &mut buf);
        buf.push(0xFF);
        assert!(decode_requests(&buf, 1).is_none());
    }
}
